package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %d", e.Now())
	}
	if e.Executed != 3 {
		t.Fatalf("executed %d", e.Executed)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times %v", times)
	}
}

func TestZeroDelayRunsAtCurrentTime(t *testing.T) {
	e := NewEngine()
	var ran bool
	e.Schedule(7, func() {
		e.Schedule(0, func() {
			if e.Now() != 7 {
				t.Errorf("zero-delay event at %d", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event never ran")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v", ran)
	}
	if e.Now() != 12 {
		t.Fatalf("clock %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	// Boundary: events exactly at t are included.
	e.RunUntil(15)
	if len(ran) != 3 {
		t.Fatalf("boundary event missed: %v", ran)
	}
	e.Run()
	if len(ran) != 4 || e.Now() != 20 {
		t.Fatalf("final: %v at %d", ran, e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 10 {
		t.Fatalf("ran %d events after Stop", count)
	}
	// Run again resumes.
	e.Run()
	if count != 100 {
		t.Fatalf("resume ran to %d", count)
	}
}

func TestPipeDelays(t *testing.T) {
	e := NewEngine()
	var arrivals []Time
	var got []interface{}
	p := &Pipe{
		Engine:             e,
		SerializationDelay: 2 * Nanosecond,
		PropagationDelay:   10 * Nanosecond,
		Sink: func(pl interface{}) {
			arrivals = append(arrivals, e.Now())
			got = append(got, pl)
		},
	}
	p.Send("a") // ser 0-2ns, arrives 12ns
	p.Send("b") // ser 2-4ns, arrives 14ns
	e.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[0] != 12*Nanosecond || arrivals[1] != 14*Nanosecond {
		t.Fatalf("arrival times %v", arrivals)
	}
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("payload order %v", got)
	}
}

func TestPipeSerializationQueuing(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 5, PropagationDelay: 0, Sink: func(interface{}) {}}
	end1 := p.Send(1)
	end2 := p.Send(2)
	if end1 != 5 || end2 != 10 {
		t.Fatalf("serialization ends %d, %d", end1, end2)
	}
	if p.FreeAt() != 10 {
		t.Fatalf("FreeAt %d", p.FreeAt())
	}
	e.Run()
	if p.BusyTime != 10 {
		t.Fatalf("BusyTime %d", p.BusyTime)
	}
}

func TestPipeIdleGapNotCountedBusy(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2, PropagationDelay: 1, Sink: func(interface{}) {}}
	p.Send(1)
	e.Schedule(100, func() { p.Send(2) })
	e.Run()
	if p.BusyTime != 4 {
		t.Fatalf("BusyTime %d, want 4", p.BusyTime)
	}
	u := p.Utilization()
	want := 4.0 / float64(e.Now())
	if u != want {
		t.Fatalf("utilization %v, want %v", u, want)
	}
}

func TestPipeInOrderUnderLoad(t *testing.T) {
	e := NewEngine()
	var got []int
	p := &Pipe{Engine: e, SerializationDelay: 3, PropagationDelay: 7,
		Sink: func(pl interface{}) { got = append(got, pl.(int)) }}
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(Time(i), func() { p.Send(i) })
	}
	e.Run()
	if len(got) != 50 {
		t.Fatalf("got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
	if p.Sent != 50 {
		t.Fatalf("Sent %d", p.Sent)
	}
}

func TestUtilizationZeroTime(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 1, Sink: func(interface{}) {}}
	if p.Utilization() != 0 {
		t.Fatal("utilization at t=0 should be 0")
	}
}

// trajectory runs a canonical mixed workload — two monotone event chains,
// an out-of-order timer that reschedules into the past-relative region, and
// nested zero-delay events — under the given drive function and records
// every dispatch as (time, id).
func trajectory(drive func(*Engine)) []Time {
	e := NewEngine()
	var log []Time
	var chain func()
	n := 0
	chain = func() {
		log = append(log, e.Now())
		n++
		if n < 500 {
			e.Schedule(3, chain)
			if n%7 == 0 {
				// Out-of-order backstop: lands before the monotone tail.
				e.At(e.Now()+1, func() { log = append(log, e.Now()+1000000) })
			}
			if n%11 == 0 {
				e.Schedule(0, func() { log = append(log, e.Now()+2000000) })
			}
		}
	}
	e.Schedule(0, chain)
	drive(e)
	return log
}

// TestRunSpansTrajectoryInvariant is the bulk-advance determinism bar: the
// dispatch trajectory must be identical whether the queue is drained by
// Run, by AdvanceTo in one jump, or by RunSpans at any span size.
func TestRunSpansTrajectoryInvariant(t *testing.T) {
	ref := trajectory(func(e *Engine) { e.Run() })
	if len(ref) == 0 {
		t.Fatal("reference trajectory empty")
	}
	drivers := map[string]func(*Engine){
		"AdvanceToOnce": func(e *Engine) { e.AdvanceTo(maxTime - 1) },
		"Spans1":        func(e *Engine) { e.RunSpans(1) },
		"Spans2":        func(e *Engine) { e.RunSpans(2) },
		"Spans17":       func(e *Engine) { e.RunSpans(17) },
		"SpansHuge":     func(e *Engine) { e.RunSpans(1 * Second) },
	}
	for name, drive := range drivers {
		got := trajectory(drive)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d dispatches, want %d", name, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s: dispatch %d at %d, want %d", name, i, got[i], ref[i])
			}
		}
	}
}

// TestAdvanceToJumpsIdleStretch: with nothing scheduled inside the span,
// the clock jumps in one assignment rather than ticking.
func TestAdvanceToJumpsIdleStretch(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(1*Second, func() { ran = true })
	e.AdvanceTo(1 * Millisecond)
	if ran || e.Now() != 1*Millisecond {
		t.Fatalf("ran=%v now=%d", ran, e.Now())
	}
	if e.Executed != 0 {
		t.Fatalf("executed %d events crossing an empty stretch", e.Executed)
	}
	e.AdvanceTo(2 * Second)
	if !ran || e.Now() != 2*Second {
		t.Fatalf("ran=%v now=%d", ran, e.Now())
	}
}

// TestRunSpansStop: Stop inside a span ends the drain immediately.
func TestRunSpansStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.RunSpans(1000)
	if count != 10 {
		t.Fatalf("ran %d events after Stop", count)
	}
}

// TestRunSpansNonPositivePanics pins the span guard.
func TestRunSpansNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEngine().RunSpans(0)
}

// TestNextTime covers the empty, sorted-lane-only, and heap-head cases.
func TestNextTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextTime(); ok {
		t.Fatal("NextTime on empty queue reported an event")
	}
	// Deepen the sorted lane beyond the insertion window so the push at 7
	// genuinely lands in the heap, then verify the merged peek reports it.
	for i := Time(0); i < 12; i++ {
		e.Schedule(42+i, func() {})
	}
	e.At(7, func() {})
	if len(e.events) == 0 {
		t.Fatal("event at 7 did not reach the heap lane")
	}
	if at, ok := e.NextTime(); !ok || at != 7 {
		t.Fatalf("NextTime = %d,%v want 7,true", at, ok)
	}
}

// TestPushBeyondInsertWindowGoesToHeap pins the lane-routing boundary the
// mixed engine benchmark relies on: an out-of-order push within
// fifoInsertWindow slots of the tail stays in the sorted lane; one deeper
// than the window reaches the heap.
func TestPushBeyondInsertWindowGoesToHeap(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.At(50, func() {}) // 1-deep lane: absorbed by tail insertion
	if len(e.events) != 0 {
		t.Fatal("shallow out-of-order push escaped the sorted lane")
	}

	e = NewEngine()
	for j := Time(0); j < 12; j++ {
		e.Schedule(4+2*j, func() {})
	}
	e.At(1, func() {}) // 12-deep lane: beyond the window → heap
	if len(e.events) != 1 {
		t.Fatalf("deep out-of-order push not in heap (heap len %d)", len(e.events))
	}
	var order []Time
	e.At(1, func() { order = append(order, 1) })
	e.Schedule(4, func() { order = append(order, 4) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 4 {
		t.Fatalf("heap/lane merge order wrong: %v", order)
	}
}

// TestAdvanceToHeapBeforeFIFOHead: an out-of-order event earlier than
// the sorted lane's head must dispatch within an AdvanceTo whose limit
// excludes the lane head — the pump may not conclude "past the limit"
// from the lane alone.
func TestAdvanceToHeapBeforeFIFOHead(t *testing.T) {
	e := NewEngine()
	var ran []Time
	// Ten lane events at 100.. so the 50 push falls outside the bounded
	// tail-insertion window and genuinely lands in the heap.
	for i := 0; i < 10; i++ {
		at := Time(100 + i)
		e.At(at, func() { ran = append(ran, at) })
	}
	e.At(50, func() { ran = append(ran, 50) })
	e.AdvanceTo(60)
	if len(ran) != 1 || ran[0] != 50 {
		t.Fatalf("ran %v, want just the heap event at 50", ran)
	}
	e.Run()
	if len(ran) != 11 {
		t.Fatalf("ran %d events total", len(ran))
	}
}

// TestBulkPumpHeapInterleave: out-of-order events pushed mid-drain must
// preempt later monotone events — the bulk pump may not run past them.
func TestBulkPumpHeapInterleave(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func() {
		order = append(order, "a")
		// Out-of-order push during the monotone drain: must run before the
		// monotone events at 30 and 40.
		e.At(20, func() { order = append(order, "heap") })
	})
	e.Schedule(30, func() { order = append(order, "b") })
	e.Schedule(40, func() { order = append(order, "c") })
	e.Run()
	want := []string{"a", "heap", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000), fn)
		if e.Pending() > 10000 {
			e.RunUntil(e.Now() + 500)
		}
	}
	e.Run()
}

func BenchmarkPipeSend(b *testing.B) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2 * Nanosecond, PropagationDelay: 10 * Nanosecond,
		Sink: func(interface{}) {}}
	for i := 0; i < b.N; i++ {
		p.Send(i)
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}

// TestFIFOLaneCompaction drives two interleaved self-perpetuating event
// chains so the monotone lane never fully drains: at every push another
// monotone event is still pending, the drained-reset in push never fires,
// and before compaction the lane grew by one slot per dispatched event.
// The backing array must stay O(pending), not O(total events dispatched).
func TestFIFOLaneCompaction(t *testing.T) {
	e := NewEngine()
	const total = 100000
	var ran [2]int
	var chain [2]func()
	for i := range chain {
		i := i
		chain[i] = func() {
			ran[i]++
			if ran[i] < total/2 {
				e.Schedule(1, chain[i])
			}
		}
	}
	e.Schedule(0, chain[0])
	e.Schedule(0, chain[1])
	e.Run()
	if ran[0] != total/2 || ran[1] != total/2 {
		t.Fatalf("chains ran %v, want %d each", ran, total/2)
	}
	if e.Executed != total {
		t.Fatalf("executed %d, want %d", e.Executed, total)
	}
	if c := cap(e.fifo); c > 1024 {
		t.Fatalf("fifo backing array grew to %d slots for %d events; dispatched prefix not reclaimed", c, total)
	}
}

// TestPipeReserveMatchesSendTiming: Reserve claims the wire exactly as
// SendAt does — same serialization window, same busy accounting, same
// arrival arithmetic — without scheduling a delivery event, so express
// claims and hop-by-hop sends interleave on one wire with identical
// timing in either order.
func TestPipeReserveMatchesSendTiming(t *testing.T) {
	e := NewEngine()
	var arrivals []Time
	p := &Pipe{Engine: e, SerializationDelay: 3, PropagationDelay: 7,
		Sink: func(interface{}) { arrivals = append(arrivals, e.Now()) }}
	a1 := p.Reserve(0)      // ser 0-3, arrival 10
	end := p.SendAt("x", 0) // queues behind the claim: ser 3-6, arrival 13
	a2 := p.Reserve(0)      // ser 6-9, arrival 16
	if a1 != 10 || end != 6 || a2 != 16 {
		t.Fatalf("reserve/send/reserve = %d/%d/%d, want 10/6/16", a1, end, a2)
	}
	e.Run()
	if len(arrivals) != 1 || arrivals[0] != 13 {
		t.Fatalf("send arrivals %v, want [13]", arrivals)
	}
	if p.Sent != 3 || p.BusyTime != 9 {
		t.Fatalf("Sent %d BusyTime %d, want 3 and 9", p.Sent, p.BusyTime)
	}
}

// TestPipeReserveHonorsEarliest: a reservation respects the earliest
// bound the same way SendAt does.
func TestPipeReserveHonorsEarliest(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2, PropagationDelay: 5, Sink: func(interface{}) {}}
	if a := p.Reserve(100); a != 107 {
		t.Fatalf("arrival %d, want 107", a)
	}
	if p.FreeAt() != 102 {
		t.Fatalf("FreeAt %d, want 102", p.FreeAt())
	}
}

// TestPipeInFlight: InFlight counts payloads sent but not yet delivered;
// reservations never count (an express flit is not on this wire's event
// queue — that is the point of reserving).
func TestPipeInFlight(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2, PropagationDelay: 10, Sink: func(interface{}) {}}
	if p.InFlight() != 0 {
		t.Fatalf("idle InFlight %d", p.InFlight())
	}
	p.SendAt(1, 0)
	p.Reserve(0)
	if p.InFlight() != 1 {
		t.Fatalf("InFlight %d after one send + one reserve, want 1", p.InFlight())
	}
	p.SendAt(2, 0)
	if p.InFlight() != 2 {
		t.Fatalf("InFlight %d after two sends, want 2", p.InFlight())
	}
	e.Run()
	if p.InFlight() != 0 {
		t.Fatalf("InFlight %d after drain, want 0", p.InFlight())
	}
}

// TestPipeQueuePeak: QueuePeak records the deepest serialization backlog
// (claiming flit included) and never decays as the queue drains.
func TestPipeQueuePeak(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2, PropagationDelay: 1, Sink: func(interface{}) {}}
	if p.QueuePeak != 0 {
		t.Fatalf("initial QueuePeak %d", p.QueuePeak)
	}
	p.Send(1)
	if p.QueuePeak != 1 {
		t.Fatalf("QueuePeak %d after uncontended send, want 1", p.QueuePeak)
	}
	p.Send(2)
	p.Send(3)
	if p.QueuePeak != 3 {
		t.Fatalf("QueuePeak %d after burst of 3, want 3", p.QueuePeak)
	}
	e.Run()
	p.Send(4) // wire is idle again: depth 1, high-water mark stays
	if p.QueuePeak != 3 {
		t.Fatalf("QueuePeak %d after drain, want 3", p.QueuePeak)
	}
}
