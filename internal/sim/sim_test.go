package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %d", e.Now())
	}
	if e.Executed != 3 {
		t.Fatalf("executed %d", e.Executed)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times %v", times)
	}
}

func TestZeroDelayRunsAtCurrentTime(t *testing.T) {
	e := NewEngine()
	var ran bool
	e.Schedule(7, func() {
		e.Schedule(0, func() {
			if e.Now() != 7 {
				t.Errorf("zero-delay event at %d", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event never ran")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v", ran)
	}
	if e.Now() != 12 {
		t.Fatalf("clock %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	// Boundary: events exactly at t are included.
	e.RunUntil(15)
	if len(ran) != 3 {
		t.Fatalf("boundary event missed: %v", ran)
	}
	e.Run()
	if len(ran) != 4 || e.Now() != 20 {
		t.Fatalf("final: %v at %d", ran, e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 10 {
		t.Fatalf("ran %d events after Stop", count)
	}
	// Run again resumes.
	e.Run()
	if count != 100 {
		t.Fatalf("resume ran to %d", count)
	}
}

func TestPipeDelays(t *testing.T) {
	e := NewEngine()
	var arrivals []Time
	var got []interface{}
	p := &Pipe{
		Engine:             e,
		SerializationDelay: 2 * Nanosecond,
		PropagationDelay:   10 * Nanosecond,
		Sink: func(pl interface{}) {
			arrivals = append(arrivals, e.Now())
			got = append(got, pl)
		},
	}
	p.Send("a") // ser 0-2ns, arrives 12ns
	p.Send("b") // ser 2-4ns, arrives 14ns
	e.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[0] != 12*Nanosecond || arrivals[1] != 14*Nanosecond {
		t.Fatalf("arrival times %v", arrivals)
	}
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("payload order %v", got)
	}
}

func TestPipeSerializationQueuing(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 5, PropagationDelay: 0, Sink: func(interface{}) {}}
	end1 := p.Send(1)
	end2 := p.Send(2)
	if end1 != 5 || end2 != 10 {
		t.Fatalf("serialization ends %d, %d", end1, end2)
	}
	if p.FreeAt() != 10 {
		t.Fatalf("FreeAt %d", p.FreeAt())
	}
	e.Run()
	if p.BusyTime != 10 {
		t.Fatalf("BusyTime %d", p.BusyTime)
	}
}

func TestPipeIdleGapNotCountedBusy(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2, PropagationDelay: 1, Sink: func(interface{}) {}}
	p.Send(1)
	e.Schedule(100, func() { p.Send(2) })
	e.Run()
	if p.BusyTime != 4 {
		t.Fatalf("BusyTime %d, want 4", p.BusyTime)
	}
	u := p.Utilization()
	want := 4.0 / float64(e.Now())
	if u != want {
		t.Fatalf("utilization %v, want %v", u, want)
	}
}

func TestPipeInOrderUnderLoad(t *testing.T) {
	e := NewEngine()
	var got []int
	p := &Pipe{Engine: e, SerializationDelay: 3, PropagationDelay: 7,
		Sink: func(pl interface{}) { got = append(got, pl.(int)) }}
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(Time(i), func() { p.Send(i) })
	}
	e.Run()
	if len(got) != 50 {
		t.Fatalf("got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
	if p.Sent != 50 {
		t.Fatalf("Sent %d", p.Sent)
	}
}

func TestUtilizationZeroTime(t *testing.T) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 1, Sink: func(interface{}) {}}
	if p.Utilization() != 0 {
		t.Fatal("utilization at t=0 should be 0")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000), fn)
		if e.Pending() > 10000 {
			e.RunUntil(e.Now() + 500)
		}
	}
	e.Run()
}

func BenchmarkPipeSend(b *testing.B) {
	e := NewEngine()
	p := &Pipe{Engine: e, SerializationDelay: 2 * Nanosecond, PropagationDelay: 10 * Nanosecond,
		Sink: func(interface{}) {}}
	for i := 0; i < b.N; i++ {
		p.Send(i)
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}

// TestFIFOLaneCompaction drives two interleaved self-perpetuating event
// chains so the monotone lane never fully drains: at every push another
// monotone event is still pending, the drained-reset in push never fires,
// and before compaction the lane grew by one slot per dispatched event.
// The backing array must stay O(pending), not O(total events dispatched).
func TestFIFOLaneCompaction(t *testing.T) {
	e := NewEngine()
	const total = 100000
	var ran [2]int
	var chain [2]func()
	for i := range chain {
		i := i
		chain[i] = func() {
			ran[i]++
			if ran[i] < total/2 {
				e.Schedule(1, chain[i])
			}
		}
	}
	e.Schedule(0, chain[0])
	e.Schedule(0, chain[1])
	e.Run()
	if ran[0] != total/2 || ran[1] != total/2 {
		t.Fatalf("chains ran %v, want %d each", ran, total/2)
	}
	if e.Executed != total {
		t.Fatalf("executed %d, want %d", e.Executed, total)
	}
	if c := cap(e.fifo); c > 1024 {
		t.Fatalf("fifo backing array grew to %d slots for %d events; dispatched prefix not reclaimed", c, total)
	}
}
