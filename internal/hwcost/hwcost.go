// Package hwcost models the hardware overhead of ISN (Section 7.3) at the
// gate level.
//
// A parallel CRC encoder is a pure GF(2) linear map: every output bit is
// the XOR of a fixed subset of message bits. This package derives those
// subsets *symbolically from the actual CRC-64 polynomial used by the rest
// of the repository* (by pushing unit vectors through the bit-serial
// reference implementation), then prices the resulting XOR trees in
// two-input gates and logic depth.
//
// On top of the baseline encoder model it prices the two design deltas of
// Section 7.3:
//
//   - ISN folding: the 10-bit sequence number is XORed into the message
//     stream ahead of the tree — 10 extra two-input XOR gates and one
//     extra level of logic depth on the affected paths.
//   - Comparator elimination: the baseline receiver compares the received
//     explicit FSN with its expected value (a 10-bit equality comparator);
//     ISN subsumes that check into the CRC, removing the comparator.
package hwcost

import (
	"fmt"
	"math/bits"

	"repro/internal/crc"
)

// XORTree models a k-input XOR reduction.
type XORTree struct {
	// Inputs is the number of bits XORed together.
	Inputs int
}

// Gates returns the number of two-input XOR gates in a balanced tree.
func (t XORTree) Gates() int {
	if t.Inputs <= 1 {
		return 0
	}
	return t.Inputs - 1
}

// Depth returns the tree's logic depth in gate levels.
func (t XORTree) Depth() int {
	if t.Inputs <= 1 {
		return 0
	}
	return bits.Len(uint(t.Inputs - 1))
}

// Circuit is a set of parallel XOR trees (one per output bit).
type Circuit struct {
	Trees []XORTree
}

// Gates returns the total two-input XOR gate count.
func (c Circuit) Gates() int {
	n := 0
	for _, t := range c.Trees {
		n += t.Gates()
	}
	return n
}

// Depth returns the worst-case logic depth across outputs.
func (c Circuit) Depth() int {
	d := 0
	for _, t := range c.Trees {
		if td := t.Depth(); td > d {
			d = td
		}
	}
	return d
}

// MaxFanIn returns the largest tree input count.
func (c Circuit) MaxFanIn() int {
	m := 0
	for _, t := range c.Trees {
		if t.Inputs > m {
			m = t.Inputs
		}
	}
	return m
}

// CRCEncoderModel builds the XOR-tree circuit of a fully parallel CRC-64
// encoder over a message of messageBytes bytes, derived symbolically from
// the repository's CRC polynomial: output bit j depends on input bit i iff
// the CRC of the unit-vector message e_i has bit j set.
//
// The derivation costs messageBytes CRC evaluations and is exact — no
// approximation of the polynomial's structure is involved.
func CRCEncoderModel(messageBytes int) Circuit {
	if messageBytes <= 0 {
		panic("hwcost: message size must be positive")
	}
	counts := make([]int, 64)
	buf := make([]byte, messageBytes)
	for byteIdx := 0; byteIdx < messageBytes; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			buf[byteIdx] = 1 << (7 - bit)
			sum := crc.Checksum(buf)
			for j := 0; j < 64; j++ {
				if sum&(1<<j) != 0 {
					counts[j]++
				}
			}
			buf[byteIdx] = 0
		}
	}
	c := Circuit{Trees: make([]XORTree, 64)}
	for j := range c.Trees {
		c.Trees[j] = XORTree{Inputs: counts[j]}
	}
	return c
}

// Comparator models an n-bit equality comparator: n XNOR gates feeding an
// (n-1)-gate AND tree.
type Comparator struct {
	Bits int
}

// Gates returns the two-input gate count (XNORs plus AND tree).
func (c Comparator) Gates() int {
	if c.Bits <= 0 {
		return 0
	}
	return c.Bits + (c.Bits - 1)
}

// Depth returns the comparator's logic depth: one XNOR level plus the AND
// tree.
func (c Comparator) Depth() int {
	if c.Bits <= 0 {
		return 0
	}
	return 1 + bits.Len(uint(c.Bits-1))
}

// Report prices the ISN retrofit of one CRC encoder/decoder pair
// (Section 7.3).
type Report struct {
	// MessageBytes is the CRC input size (2B header + 240B payload).
	MessageBytes int
	// SeqBits is the sequence number width folded into the CRC (10).
	SeqBits int

	// Baseline is the parallel CRC encoder without ISN.
	Baseline Circuit
	// ISNExtraXORs is the number of additional two-input XOR gates the
	// fold adds per encoder or decoder (one per sequence bit).
	ISNExtraXORs int
	// ISNExtraDepth is the additional logic depth on the folded paths.
	ISNExtraDepth int
	// ComparatorRemoved is the receive-side FSN comparator ISN makes
	// redundant.
	ComparatorRemoved Comparator

	// NetGatesPerEndpoint is the per-endpoint gate delta: encoder fold +
	// decoder fold − comparator.
	NetGatesPerEndpoint int
}

// NewReport prices ISN on a CRC over messageBytes of input with a
// seqBits-wide sequence number.
func NewReport(messageBytes, seqBits int) Report {
	if seqBits <= 0 || seqBits > 64 {
		panic("hwcost: sequence width out of (0,64]")
	}
	r := Report{
		MessageBytes:      messageBytes,
		SeqBits:           seqBits,
		Baseline:          CRCEncoderModel(messageBytes),
		ISNExtraXORs:      seqBits,
		ISNExtraDepth:     1,
		ComparatorRemoved: Comparator{Bits: seqBits},
	}
	// An endpoint folds the sequence number on both transmit (SeqNum into
	// the encoder) and receive (ESeqNum into the decoder), and drops the
	// explicit-FSN comparator.
	r.NetGatesPerEndpoint = 2*r.ISNExtraXORs - r.ComparatorRemoved.Gates()
	return r
}

// DefaultReport prices ISN on the paper's configuration: a 242-byte CRC
// input (2B header + 240B payload) and a 10-bit sequence number.
func DefaultReport() Report {
	return NewReport(242, crc.SeqBits)
}

// RelativeGateOverhead returns the fold's gate cost as a fraction of the
// baseline encoder — the "minimal overhead" claim quantified.
func (r Report) RelativeGateOverhead() float64 {
	return float64(r.ISNExtraXORs) / float64(r.Baseline.Gates())
}

// RelativeDepthOverhead returns the extra depth as a fraction of the
// baseline tree depth.
func (r Report) RelativeDepthOverhead() float64 {
	return float64(r.ISNExtraDepth) / float64(r.Baseline.Depth())
}

// String renders the Section 7.3 summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"ISN hardware cost over %dB CRC input: +%d XOR gates (+%.4f%%), +%d logic level (baseline depth %d), −1 %d-bit comparator (%d gates); net %+d gates/endpoint",
		r.MessageBytes, r.ISNExtraXORs, 100*r.RelativeGateOverhead(),
		r.ISNExtraDepth, r.Baseline.Depth(),
		r.ComparatorRemoved.Bits, r.ComparatorRemoved.Gates(),
		r.NetGatesPerEndpoint)
}
