package hwcost

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/crc"
	"repro/internal/phy"
)

func TestXORTreeGatesAndDepth(t *testing.T) {
	cases := []struct {
		inputs, gates, depth int
	}{
		{0, 0, 0},
		{1, 0, 0},
		{2, 1, 1},
		{3, 2, 2},
		{4, 3, 2},
		{5, 4, 3},
		{8, 7, 3},
		{9, 8, 4},
		{1024, 1023, 10},
	}
	for _, c := range cases {
		tr := XORTree{Inputs: c.inputs}
		if tr.Gates() != c.gates {
			t.Errorf("inputs=%d: gates=%d, want %d", c.inputs, tr.Gates(), c.gates)
		}
		if tr.Depth() != c.depth {
			t.Errorf("inputs=%d: depth=%d, want %d", c.inputs, tr.Depth(), c.depth)
		}
	}
}

func TestComparatorCost(t *testing.T) {
	c := Comparator{Bits: 10}
	if c.Gates() != 19 { // 10 XNOR + 9 AND
		t.Fatalf("10-bit comparator gates = %d, want 19", c.Gates())
	}
	if c.Depth() != 5 { // 1 XNOR level + 4 AND levels
		t.Fatalf("10-bit comparator depth = %d, want 5", c.Depth())
	}
	if (Comparator{Bits: 0}).Gates() != 0 {
		t.Fatal("empty comparator must be free")
	}
}

// TestCRCEncoderModelLinearity cross-validates the symbolic derivation:
// the model says output bit j depends on input bit i iff CRC(e_i) has bit
// j set; by GF(2) linearity the CRC of any message must equal the XOR of
// the unit-vector CRCs selected by its set bits.
func TestCRCEncoderModelLinearity(t *testing.T) {
	const n = 8 // small message so the check is exhaustive-ish
	rng := phy.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		msg := make([]byte, n)
		rng.Fill(msg)
		var want uint64
		unit := make([]byte, n)
		for i := 0; i < n*8; i++ {
			if msg[i/8]&(1<<(7-i%8)) != 0 {
				unit[i/8] = 1 << (7 - i%8)
				want ^= crc.Checksum(unit)
				unit[i/8] = 0
			}
		}
		if got := crc.Checksum(msg); got != want {
			t.Fatalf("CRC is not linear?! got %#x want %#x", got, want)
		}
	}
}

// TestCRCEncoderModelShape sanity-checks the derived circuit: a good CRC
// polynomial makes every output bit depend on roughly half the message
// bits.
func TestCRCEncoderModelShape(t *testing.T) {
	c := CRCEncoderModel(242)
	if len(c.Trees) != 64 {
		t.Fatalf("%d output trees, want 64", len(c.Trees))
	}
	totalBits := 242 * 8
	for j, tr := range c.Trees {
		frac := float64(tr.Inputs) / float64(totalBits)
		if frac < 0.35 || frac > 0.65 {
			t.Errorf("output bit %d depends on %.2f of inputs, want ≈0.5", j, frac)
		}
	}
	if c.Gates() == 0 || c.Depth() == 0 {
		t.Fatal("empty circuit")
	}
	if c.MaxFanIn() <= totalBits/3 {
		t.Fatalf("max fan-in %d implausibly small", c.MaxFanIn())
	}
}

// TestSection73Headline reproduces the paper's numbers: 10 XOR gates per
// fold, one extra logic level, one 10-bit comparator removed.
func TestSection73Headline(t *testing.T) {
	r := DefaultReport()
	if r.ISNExtraXORs != 10 {
		t.Errorf("extra XORs = %d, want 10", r.ISNExtraXORs)
	}
	if r.ISNExtraDepth != 1 {
		t.Errorf("extra depth = %d, want 1", r.ISNExtraDepth)
	}
	if r.ComparatorRemoved.Bits != 10 {
		t.Errorf("comparator bits = %d, want 10", r.ComparatorRemoved.Bits)
	}
	// Net: 2×10 XORs added, 19 comparator gates removed → +1 gate.
	if r.NetGatesPerEndpoint != 1 {
		t.Errorf("net gates = %d, want 1", r.NetGatesPerEndpoint)
	}
}

// TestOverheadIsMinimal quantifies "minimal": the fold adds well under
// 0.1% to the encoder's gates and under 10% to its depth.
func TestOverheadIsMinimal(t *testing.T) {
	r := DefaultReport()
	if g := r.RelativeGateOverhead(); g >= 0.001 {
		t.Errorf("relative gate overhead %g, want < 0.1%%", g)
	}
	if d := r.RelativeDepthOverhead(); d > 0.1 {
		t.Errorf("relative depth overhead %g, want <= 10%%", d)
	}
}

func TestReportString(t *testing.T) {
	s := DefaultReport().String()
	for _, want := range []string{"+10 XOR", "10-bit comparator", "+1 logic level"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestNewReportPanicsOnBadSeqBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReport(242, 0)
}

func TestCRCEncoderModelPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CRCEncoderModel(0)
}

// TestCircuitGatesAdditive: property — total gates equal the sum of the
// per-tree counts (guards against aggregation bugs if the circuit type
// grows).
func TestCircuitGatesAdditive(t *testing.T) {
	f := func(sizes []uint8) bool {
		c := Circuit{}
		want := 0
		for _, s := range sizes {
			tr := XORTree{Inputs: int(s)}
			c.Trees = append(c.Trees, tr)
			want += tr.Gates()
		}
		return c.Gates() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestISNFoldEquivalence verifies the hardware claim functionally: folding
// the sequence number into the low bits of the message (the 10-XOR
// datapath) produces exactly the checksum the ISN encoder computes.
func TestISNFoldEquivalence(t *testing.T) {
	rng := phy.NewRNG(77)
	msg := make([]byte, 242)
	for trial := 0; trial < 64; trial++ {
		rng.Fill(msg)
		seq := uint16(rng.Intn(1 << crc.SeqBits))

		// Hardware view: XOR the sequence bits into the message tail,
		// then run the unmodified CRC tree.
		folded := append([]byte(nil), msg...)
		folded[len(folded)-1] ^= byte(seq)
		folded[len(folded)-2] ^= byte(seq >> 8)
		hw := crc.Checksum(folded)

		if sw := crc.ChecksumISN(seq, msg); sw != hw {
			t.Fatalf("trial %d: hardware fold %#x != ChecksumISN %#x", trial, hw, sw)
		}
	}
}
