// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional choice for
// Reed-Solomon codes in storage and communication standards. Elements are
// represented as bytes; addition is XOR, multiplication is carried out via
// exp/log tables built at package init.
//
// The package is the foundation of the shortened Reed-Solomon FEC used by
// the CXL/RXL link layer (internal/rs). It is allocation-free and safe for
// concurrent use: the tables are written once during init and only read
// afterwards.
package gf256

// Poly is the primitive polynomial used to construct the field, with the
// x^8 term implicit (0x11D = x^8+x^4+x^3+x^2+1).
const Poly = 0x11D

// Order is the multiplicative order of the field's generator: every nonzero
// element satisfies a^Order == 1.
const Order = 255

var (
	// expTable[i] = alpha^i for i in [0, 510). Doubled so that
	// Mul can index exp[log(a)+log(b)] without a modular reduction.
	expTable [510]byte
	// logTable[a] = discrete log of a (undefined for 0; logTable[0] is a
	// sentinel that is never consulted on valid inputs).
	logTable [256]int
)

func init() {
	x := 1
	for i := 0; i < Order; i++ {
		expTable[i] = byte(x)
		expTable[i+Order] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	if x != 1 {
		panic("gf256: generator does not have order 255; polynomial is not primitive")
	}
	logTable[0] = -1 // poison value: log of zero is undefined
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Div returns a / b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := logTable[a] - logTable[b]
	if d < 0 {
		d += Order
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[Order-logTable[a]]
}

// Exp returns alpha^e where alpha is the field generator. The exponent may
// be any integer; it is reduced modulo Order.
func Exp(e int) byte {
	e %= Order
	if e < 0 {
		e += Order
	}
	return expTable[e]
}

// Log returns the discrete logarithm of a to base alpha, i.e. the e in
// [0, Order) with alpha^e == a. It panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return logTable[a]
}

// Pow returns a^e in GF(2^8). Pow(0, 0) is defined as 1, matching the
// convention for polynomial evaluation; Pow(0, e>0) is 0.
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (logTable[a] * e) % Order
	if le < 0 {
		le += Order
	}
	return expTable[le]
}

// MulSlice multiplies every element of p in place by c and returns p.
// It is used by the Reed-Solomon encoder's hot loop.
func MulSlice(p []byte, c byte) []byte {
	if c == 0 {
		for i := range p {
			p[i] = 0
		}
		return p
	}
	lc := logTable[c]
	for i, v := range p {
		if v != 0 {
			p[i] = expTable[logTable[v]+lc]
		}
	}
	return p
}

// AddMulSlice computes dst[i] ^= c * src[i] for every i, the fused
// multiply-accumulate used by systematic RS encoding. dst and src must have
// the same length.
func AddMulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: AddMulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	lc := logTable[c]
	for i, v := range src {
		if v != 0 {
			dst[i] ^= expTable[logTable[v]+lc]
		}
	}
}

// PolyEval evaluates the polynomial with coefficients p (p[0] is the
// highest-degree coefficient) at point x, using Horner's rule.
func PolyEval(p []byte, x byte) byte {
	var acc byte
	for _, c := range p {
		acc = Mul(acc, x) ^ c
	}
	return acc
}

// PolyMul returns the product of polynomials a and b (highest-degree
// coefficient first).
func PolyMul(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, ac := range a {
		if ac == 0 {
			continue
		}
		for j, bc := range b {
			out[i+j] ^= Mul(ac, bc)
		}
	}
	return out
}
