package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x55, 0xAA) != 0xFF {
		t.Fatalf("Add(0x55,0xAA) = %#x, want 0xFF", Add(0x55, 0xAA))
	}
	for a := 0; a < 256; a++ {
		if Add(byte(a), byte(a)) != 0 {
			t.Fatalf("a + a != 0 for a=%d", a)
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Errorf("Mul(%d, 1) = %d", a, Mul(byte(a), 1))
		}
		if Mul(byte(a), 0) != 0 {
			t.Errorf("Mul(%d, 0) = %d", a, Mul(byte(a), 0))
		}
	}
}

// mulSlow is a bitwise reference implementation of carry-less multiplication
// modulo the field polynomial, independent of the table construction.
func mulSlow(a, b byte) byte {
	var prod uint16
	aa := uint16(a)
	for i := 0; i < 8; i++ {
		if b&(1<<i) != 0 {
			prod ^= aa << i
		}
	}
	// Reduce modulo x^8+x^4+x^3+x^2+1.
	for i := 15; i >= 8; i-- {
		if prod&(1<<i) != 0 {
			prod ^= uint16(Poly) << (i - 8)
		}
	}
	return byte(prod)
}

func TestMulMatchesBitwiseReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b))
			if got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(dist, nil); err != nil {
		t.Error(err)
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a=%d (inv=%d)", a, inv)
		}
		if Div(byte(a), byte(a)) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
	}
	prop := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for e := 0; e < Order; e++ {
		if Log(Exp(e)) != e {
			t.Fatalf("Log(Exp(%d)) = %d", e, Log(Exp(e)))
		}
	}
	// Exp is periodic with period Order, including negative exponents.
	if Exp(-1) != Exp(Order-1) {
		t.Error("Exp(-1) != Exp(Order-1)")
	}
	if Exp(Order) != 1 {
		t.Error("Exp(Order) != 1")
	}
}

func TestExpCoversAllNonzeroElements(t *testing.T) {
	seen := make(map[byte]bool)
	for e := 0; e < Order; e++ {
		seen[Exp(e)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator orbit has %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Fatal("generator orbit contains 0")
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Error("Pow(0,0) != 1")
	}
	if Pow(0, 5) != 0 {
		t.Error("Pow(0,5) != 0")
	}
	for a := 1; a < 256; a++ {
		want := byte(1)
		for e := 0; e < 10; e++ {
			if got := Pow(byte(a), e); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = Mul(want, byte(a))
		}
		// Fermat's little theorem analogue: a^255 == 1.
		if Pow(byte(a), Order) != 1 {
			t.Fatalf("Pow(%d, 255) != 1", a)
		}
	}
}

func TestMulSlice(t *testing.T) {
	p := []byte{1, 2, 3, 0, 255}
	q := make([]byte, len(p))
	copy(q, p)
	MulSlice(q, 7)
	for i := range p {
		if q[i] != Mul(p[i], 7) {
			t.Fatalf("MulSlice mismatch at %d", i)
		}
	}
	MulSlice(q, 0)
	for i := range q {
		if q[i] != 0 {
			t.Fatal("MulSlice by zero did not clear")
		}
	}
}

func TestAddMulSlice(t *testing.T) {
	dst := []byte{10, 20, 30}
	src := []byte{1, 0, 5}
	want := make([]byte, 3)
	for i := range want {
		want[i] = dst[i] ^ Mul(src[i], 9)
	}
	AddMulSlice(dst, src, 9)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("AddMulSlice mismatch at %d: got %d want %d", i, dst[i], want[i])
		}
	}
	// c == 0 is a no-op.
	before := append([]byte(nil), dst...)
	AddMulSlice(dst, src, 0)
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("AddMulSlice with c=0 modified dst")
		}
	}
}

func TestAddMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AddMulSlice(make([]byte, 2), make([]byte, 3), 1)
}

func TestPolyEval(t *testing.T) {
	// p(x) = 2x^2 + 3x + 5
	p := []byte{2, 3, 5}
	for x := 0; x < 256; x++ {
		xb := byte(x)
		want := Add(Add(Mul(2, Mul(xb, xb)), Mul(3, xb)), 5)
		if got := PolyEval(p, xb); got != want {
			t.Fatalf("PolyEval at x=%d: got %d want %d", x, got, want)
		}
	}
	if PolyEval(nil, 7) != 0 {
		t.Error("PolyEval(nil) != 0")
	}
}

func TestPolyMul(t *testing.T) {
	// (x + 1)(x + 2) = x^2 + 3x + 2 over GF(2^8).
	got := PolyMul([]byte{1, 1}, []byte{1, 2})
	want := []byte{1, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("PolyMul length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolyMul[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if PolyMul(nil, []byte{1}) != nil {
		t.Error("PolyMul with empty operand should be nil")
	}
}

// Property: evaluating a product polynomial equals the product of evaluations.
func TestPolyMulEvalHomomorphism(t *testing.T) {
	prop := func(a0, a1, b0, b1, x byte) bool {
		a := []byte{a0, a1}
		b := []byte{b0, b1}
		return PolyEval(PolyMul(a, b), x) == Mul(PolyEval(a, x), PolyEval(b, x))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	sink = acc
}

func BenchmarkAddMulSlice(b *testing.B) {
	dst := make([]byte, 256)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMulSlice(dst, src, byte(i)|1)
	}
}

var sink byte
