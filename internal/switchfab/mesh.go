package switchfab

import (
	"fmt"
	"sort"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/rs"
	"repro/internal/sim"
)

// Mesh is a W×H 2D-mesh Network-on-Chip built from the same switching
// elements as the scale-out chains — the paper's future-work direction
// ("extending ISN to other protocols and systems, such as Network-on-Chip
// and chiplet interconnects"). Every hop terminates FEC; under ModeRXL
// the end-to-end CRC (with ISN) passes through every router untouched, so
// a flit crossing ten routers gets the same drop/corruption guarantees as
// one crossing a single switch.
//
// Routing is dimension-ordered (XY): a flit first travels along X to its
// destination column, then along Y — deadlock-free and deterministic,
// which matters because ISN requires in-order single-path delivery
// (Section 5 rules out multi-path for CXL-class protocols).
//
// Error injection is schedule-driven per path, not per wire: every
// (source, destination) pair lazily owns one phy.SharedSchedule, and a
// flit's whole XY traversal consumes one hops-wide window of that stream.
// At the injection wire a clean window grants the flit a path pass, so
// every downstream router crossing skips channel work entirely; struck
// traversals consume the stream hop by hop, landing corruption on the
// exact crossing the schedule assigns it (where that hop's FEC
// termination sees it). The grant policy applies identically to fast-path
// and byte-level flits — only the per-hop byte work differs — which is
// what keeps the two bit-identical (internal/core's mesh differential
// suite).
type Mesh struct {
	W, H int
	Eng  *sim.Engine
	// Routers indexes the switching elements as [x][y].
	Routers [][]*Switch

	// out[x][y][d] is the egress wire of router (x,y) toward direction d.
	out [][][meshDirs]*link.Wire
	// locals[x][y] delivers flits addressed to node (x,y).
	locals [][]func(*flit.Flit)
	// localSink[x][y] is the stable engine-event form of locals[x][y]
	// (release when unattached), shared by the hop-by-hop latency event
	// and the express delivery event so neither allocates per flit.
	localSink [][]func(interface{})
	// ingress[x][y] is the wire a node uses to inject at its router.
	ingress [][]*link.Wire

	wires []*link.Wire

	// noExpress disables the express traversal path, forcing every flit
	// through per-hop forwarding events — the PR 5 baseline, kept for
	// benchmarks and the express differential tests.
	noExpress bool

	// ExpressTraversals counts traversals collapsed into up-front wire
	// claims plus a single delivery event; ExpressFallbacks counts
	// routable traversals that paid per-hop events instead — a struck
	// schedule window (the scheduled walk below), a scripted/volatile
	// wire, an installed fault hook, or a fault-configured router.
	// Identical between fast-path and byte-level runs — the express
	// decision never consults the flit's fast-path marks.
	ExpressTraversals uint64
	ExpressFallbacks  uint64

	// walkFn is the stable event sink of scheduled hop-by-hop walks
	// (struck flits on express-eligible routes), bound once so each walk
	// step carries only its *meshWalk payload.
	walkFn func(interface{})

	// wrap marks torus mode: the row/column rings close and routing takes
	// the minimal direction around each ring.
	wrap bool

	// Per-path error-event schedules, keyed src<<8|dst, created on first
	// traffic from a dedicated RNG lineage (deterministic per seed and
	// traffic order). nil maps mean BER 0 — no error model at all.
	paths   map[uint16]*phy.SharedSchedule
	pathRNG *phy.RNG
	ber     float64
	burst   float64
	// berScale is the fault-campaign multiplier currently applied on top
	// of the configured BER (1 outside storm/degrade windows). It steers
	// schedules created after the scale change; SetPathBERScale retunes
	// the already-existing ones.
	berScale float64
	// fec materializes deferred seals when a schedule strikes a deferred
	// flit mid-path.
	fec *rs.Interleaved
}

// Mesh directions.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	meshDirs
)

// MeshConfig carries per-hop timing and the channel error model.
type MeshConfig struct {
	Mode          Mode
	Serialization sim.Time
	Propagation   sim.Time
	RouterLatency sim.Time
	// BER and BurstProb configure the per-path shared error schedules
	// (0 = clean).
	BER       float64
	BurstProb float64
	Seed      uint64
	// Wrap closes the row and column rings, turning the mesh into a 2D
	// torus: every router gains wraparound wires (when the dimension has
	// at least two routers) and dimension-ordered routing takes the
	// minimal direction around each ring, breaking exact ties toward
	// east/south. Everything else — per-hop FEC termination, the (src,dst)
	// routing-tag schedule keying, whole-traversal grants at the ingress
	// wire — is unchanged; only the hop count of a traversal shrinks.
	Wrap bool
	// NoExpress disables the express traversal path: every flit pays one
	// engine event per hop as in PR 5. Express changes the order in which
	// wires are claimed under cross-traffic (the whole route is claimed
	// at injection), so this is a model switch, not an optimization
	// toggle — but on same-path-only traffic the two produce identical
	// timing, which the express tests pin.
	NoExpress bool
}

// DefaultMeshConfig returns NoC-scale timing: 2 ns flits, 1 ns hops,
// 2 ns router traversal.
func DefaultMeshConfig(mode Mode) MeshConfig {
	return MeshConfig{
		Mode:          mode,
		Serialization: sim.FlitTime,
		Propagation:   sim.Nanosecond,
		RouterLatency: 2 * sim.Nanosecond,
	}
}

// NewMesh builds the W×H mesh. Node IDs are y*W+x, carried in the flit's
// routing byte; W*H must fit in one byte.
func NewMesh(eng *sim.Engine, w, h int, cfg MeshConfig) *Mesh {
	if w < 1 || h < 1 || w*h > 256 {
		panic(fmt.Sprintf("switchfab: mesh %dx%d out of range", w, h))
	}
	m := &Mesh{W: w, H: h, Eng: eng, wrap: cfg.Wrap, berScale: 1, noExpress: cfg.NoExpress}
	if !cfg.NoExpress {
		m.walkFn = m.walkStep
	}
	if cfg.BER > 0 {
		m.paths = make(map[uint16]*phy.SharedSchedule)
		m.pathRNG = phy.NewRNG(cfg.Seed)
		m.ber, m.burst = cfg.BER, cfg.BurstProb
		m.fec = flit.NewFEC()
	}

	m.Routers = make([][]*Switch, w)
	m.out = make([][][meshDirs]*link.Wire, w)
	m.locals = make([][]func(*flit.Flit), w)
	m.localSink = make([][]func(interface{}), w)
	m.ingress = make([][]*link.Wire, w)
	for x := 0; x < w; x++ {
		m.Routers[x] = make([]*Switch, h)
		m.out[x] = make([][meshDirs]*link.Wire, h)
		m.locals[x] = make([]func(*flit.Flit), h)
		m.localSink[x] = make([]func(interface{}), h)
		m.ingress[x] = make([]*link.Wire, h)
		for y := 0; y < h; y++ {
			m.Routers[x][y] = NewSwitch(fmt.Sprintf("R%d.%d", x, y), eng, cfg.Mode, cfg.RouterLatency, nil)
			x, y := x, y
			m.localSink[x][y] = func(p interface{}) {
				f := p.(*flit.Flit)
				if m.locals[x][y] != nil {
					m.locals[x][y](f)
				} else {
					flit.Release(f)
				}
			}
		}
	}

	mkWire := func(deliver func(*flit.Flit)) *link.Wire {
		wr := link.NewWire(eng, cfg.Serialization, cfg.Propagation, deliver)
		m.wires = append(m.wires, wr)
		return wr
	}

	// Inter-router wires: each delivers into the neighbor's pipeline
	// behind a hop crossing of the flit's path schedule. Node-ingress
	// wires are the injection points where whole-path grants are taken.
	// Under Wrap the boundary routers gain wraparound wires in the same
	// direction slots (east from x=W-1 lands on x=0, and so on), so the
	// forwarding switch below needs no wrap-specific cases.
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				m.out[x][y][dirEast] = mkWire(m.hopArrival(x+1, y))
			} else if cfg.Wrap && w > 1 {
				m.out[x][y][dirEast] = mkWire(m.hopArrival(0, y))
			}
			if x > 0 {
				m.out[x][y][dirWest] = mkWire(m.hopArrival(x-1, y))
			} else if cfg.Wrap && w > 1 {
				m.out[x][y][dirWest] = mkWire(m.hopArrival(w-1, y))
			}
			if y+1 < h {
				m.out[x][y][dirSouth] = mkWire(m.hopArrival(x, y+1))
			} else if cfg.Wrap && h > 1 {
				m.out[x][y][dirSouth] = mkWire(m.hopArrival(x, 0))
			}
			if y > 0 {
				m.out[x][y][dirNorth] = mkWire(m.hopArrival(x, y-1))
			} else if cfg.Wrap && h > 1 {
				m.out[x][y][dirNorth] = mkWire(m.hopArrival(x, h-1))
			}
			m.ingress[x][y] = mkWire(m.injectArrival(x, y))
		}
	}
	return m
}

// dimDist is the router count a flit crosses along one dimension: the
// absolute distance on a mesh, the minimal ring distance on a torus.
func (m *Mesh) dimDist(cur, dst, size int) int {
	d := abs(dst - cur)
	if m.wrap && size-d < d {
		d = size - d
	}
	return d
}

// dimStep is the per-dimension routing decision at a router: -1, 0, or +1
// toward the destination coordinate. On a torus the minimal ring direction
// wins; exact ties (even ring sizes, antipodal destination) break toward
// +1 (east/south) so routes stay deterministic.
func (m *Mesh) dimStep(cur, dst, size int) int {
	if cur == dst {
		return 0
	}
	if m.wrap {
		fwd := dst - cur
		if fwd < 0 {
			fwd += size
		}
		if fwd <= size-fwd {
			return 1
		}
		return -1
	}
	if dst > cur {
		return 1
	}
	return -1
}

// HopsBetween counts the wire crossings of a (sx,sy)→(dx,dy) traversal:
// the node-ingress wire plus the routing distance, topology-aware. It is
// the hop count whole-traversal grants consume at injection.
func (m *Mesh) HopsBetween(sx, sy, dx, dy int) int {
	return 1 + m.dimDist(sx, dx, m.W) + m.dimDist(sy, dy, m.H)
}

// pathKey identifies a shared schedule by the flit's routing tags. Both
// tags sit inside the CRC-protected payload, so a corrupted tag resolves
// the same (wrong) schedule on the fast and byte-level paths alike.
func pathKey(src, dst byte) uint16 { return uint16(src)<<8 | uint16(dst) }

// pathSched returns (creating on first use) the shared error schedule of
// the src→dst path, at the BER currently in force (base × fault scale).
func (m *Mesh) pathSched(src, dst byte) *phy.SharedSchedule {
	k := pathKey(src, dst)
	s, ok := m.paths[k]
	if !ok {
		s = phy.NewSharedSchedule(m.ber*m.berScale, m.burst, m.pathRNG.Split(), flit.Bits)
		m.paths[k] = s
	}
	return s
}

// SetPathBERScale multiplies the configured BER of every path schedule —
// the mesh-wide primitive behind scripted lane-degrade and BER-storm
// campaigns (scale 1 restores the configured rate). Existing schedules
// redraw their pending error gap at the new rate from their own RNG
// streams, and schedules created later inherit the scale, so the effect
// is identical no matter which paths have carried traffic yet. On a
// clean mesh (BER 0) there is no error model to scale and the call is a
// no-op. Callers on the fast==byte-level differential contract must
// apply scale changes as simulation events, so both runs retune each
// schedule at the same point of its consumption stream.
func (m *Mesh) SetPathBERScale(scale float64) {
	if scale <= 0 {
		panic("switchfab: non-positive BER scale")
	}
	m.berScale = scale
	if m.paths == nil {
		return
	}
	// Iteration order does not matter: each schedule redraws from its own
	// RNG stream, independent of the others.
	for _, s := range m.paths {
		s.Channel().SetBER(m.ber * scale)
	}
}

// injectArrival wraps router (x,y)'s pipeline for its node-ingress wire:
// the flit's whole traversal opens here. hops counts every wire crossing
// of the XY route — this ingress wire plus the Manhattan distance to the
// destination router; flits with an unroutable destination consume one
// crossing and die at this router.
//
// A flit that wins the whole-traversal grant (or rides a clean BER-0
// mesh, where every traversal is trivially clean) has fully deterministic
// mesh timing, so the traversal tries to go express: claim every wire of
// the route up front and schedule exactly one delivery event. A struck
// flit on the same (express-eligible) route claims its wires up front too
// but walks them with per-hop events (scheduleWalk) — byte work happens
// at each hop, only the claim timing moves to injection, which is what
// keeps every claim on a path in injection order. Routes express cannot
// claim fall back to the lazy per-hop pipeline below. The express
// decision depends only on the grant verdict and route state — never on
// the flit's fast-path marks — so fast-path and byte-level runs take it
// identically.
func (m *Mesh) injectArrival(x, y int) func(*flit.Flit) {
	pipeline := m.routerIngress(x, y)
	if m.paths == nil && m.noExpress {
		return pipeline
	}
	return func(f *flit.Flit) {
		// Both routing tags are read before the injection crossing can
		// corrupt the image: the express decision and the schedule key use
		// the flit's true path identity.
		src := f.Payload()[flit.SrcRouteOffset]
		dst := f.Payload()[flit.RouteOffset]
		dx, dy, ok := m.nodeXY(dst)
		hops := 1
		if ok {
			hops = m.HopsBetween(x, y, dx, dy)
		}
		granted := true
		if m.paths != nil {
			granted = link.BeginPathTraversal(m.pathSched(src, dst), m.fec, f, hops)
		}
		if ok && !m.noExpress {
			if granted && m.expressTraverse(f, x, y, dx, dy) {
				m.ExpressTraversals++
				return
			}
			m.ExpressFallbacks++
			if !granted && m.scheduleWalk(f, x, y, dx, dy) {
				return
			}
		}
		pipeline(f)
	}
}

// meshWalk is the event payload of a scheduled hop-by-hop walk: a struck
// flit on an express-eligible route. Its wires were all claimed at
// injection (claim order identical to express), but it still pays one
// event per hop at the pre-reserved arrival times, crossing its path
// schedule and terminating FEC at every router like the lazy pipeline.
type meshWalk struct {
	f      *flit.Flit
	cx, cy int // router the next walkStep arrives at
	dx, dy int // destination router, fixed at injection (source routing)
	i      int // index into times of the current step
	times  []sim.Time
}

// scheduleWalk carries a struck (ungranted) flit through the mesh with
// its whole route claimed at injection: eligibility is exactly express's,
// so on any eligible path *every* flit — granted express or struck walk —
// claims its wires in injection order, which is what keeps per-path
// delivery in order (ISN's ground rule) without express ever blocking
// behind a draining traversal. The flit still pays one event per hop at
// the pre-reserved arrival times, where it crosses the path schedule and
// terminates FEC byte-for-byte like the lazy pipeline; only the claim
// *timing* moved to injection, and sim.Pipe's claim floor is
// max(now, earliest), so the reserved windows — and every queue-depth
// statistic — are identical to the lazy claims on uncontended paths.
//
// The route is fixed here from the pre-crossing routing tags (source
// routing): corruption that rewrites the route bytes in flight changes
// which schedule later crossings consume — same as the lazy pipeline —
// but not the wires the flit occupies. Returns false, having claimed
// nothing, when the route is not express-eligible; the caller falls back
// to the lazy hop-by-hop pipeline.
func (m *Mesh) scheduleWalk(f *flit.Flit, x, y, dx, dy int) bool {
	cx, cy := x, y
	hops := 0
	for {
		r := m.Routers[cx][cy]
		if r.InternalHook != nil || r.InternalBitFlipProb > 0 {
			return false
		}
		d := m.routeDir(cx, cy, dx, dy)
		if d < 0 {
			break
		}
		w := m.out[cx][cy][d]
		if w == nil || !w.ExpressClaimable() {
			return false
		}
		hops++
		cx, cy = m.neighbor(cx, cy, d)
	}
	if hops == 0 {
		// Local delivery at the injection router: nothing to claim, the
		// lazy pipeline handles it identically.
		return false
	}
	// Injection router: processed now, synchronously — exactly when the
	// lazy pipeline would run it. A struck flit may already be corrupt;
	// an uncorrectable drop here has claimed nothing.
	r := m.Routers[x][y]
	if !r.process(f) {
		flit.Release(f)
		return true
	}
	r.Stats.Forwarded++
	// Claim walk: reserve every route wire up front in route order.
	wk := &meshWalk{f: f, dx: dx, dy: dy, times: make([]sim.Time, 0, hops)}
	arrive := m.Eng.Now()
	cx, cy = x, y
	for {
		d := m.routeDir(cx, cy, dx, dy)
		if d < 0 {
			break
		}
		arrive = m.out[cx][cy][d].Reserve(arrive + m.Routers[cx][cy].Latency)
		wk.times = append(wk.times, arrive)
		cx, cy = m.neighbor(cx, cy, d)
	}
	wk.cx, wk.cy = m.neighbor(x, y, m.routeDir(x, y, dx, dy))
	m.Eng.AtArg(wk.times[0], m.walkFn, wk)
	return true
}

// walkStep is one router arrival of a scheduled walk: cross the path
// schedule, terminate FEC, then deliver locally or chain the next step at
// its pre-reserved time. Scheduling each step from its predecessor — not
// all at once at injection — keeps the engine's (time, schedule-order)
// trajectory aligned with the lazy pipeline's, and means a flit dropped
// mid-walk leaves no dangling event behind.
func (m *Mesh) walkStep(p interface{}) {
	wk := p.(*meshWalk)
	f := wk.f
	if m.paths != nil && !f.TakePathPass() {
		// Same consumption as hopArrival: the possibly-corrupted tags
		// choose the schedule.
		src := f.Payload()[flit.SrcRouteOffset]
		dst := f.Payload()[flit.RouteOffset]
		link.CrossPathUnit(m.pathSched(src, dst), m.fec, f)
	}
	r := m.Routers[wk.cx][wk.cy]
	if !r.process(f) {
		flit.Release(f)
		return
	}
	d := m.routeDir(wk.cx, wk.cy, wk.dx, wk.dy)
	if d < 0 {
		r.Stats.DeliveredLocal++
		sink := m.localSink[wk.cx][wk.cy]
		if r.Latency > 0 {
			m.Eng.ScheduleArg(r.Latency, sink, f)
		} else {
			sink(f)
		}
		return
	}
	r.Stats.Forwarded++
	wk.i++
	wk.cx, wk.cy = m.neighbor(wk.cx, wk.cy, d)
	m.Eng.AtArg(wk.times[wk.i], m.walkFn, wk)
}

// routeDir is the dimension-ordered routing decision at router (cx,cy)
// for destination router (dx,dy): an egress direction, or -1 for local
// delivery. It mirrors routerIngress exactly, so an express walk visits
// precisely the routers and wires the hop-by-hop path would.
func (m *Mesh) routeDir(cx, cy, dx, dy int) int {
	if sx := m.dimStep(cx, dx, m.W); sx > 0 {
		return dirEast
	} else if sx < 0 {
		return dirWest
	}
	if sy := m.dimStep(cy, dy, m.H); sy > 0 {
		return dirSouth
	} else if sy < 0 {
		return dirNorth
	}
	return -1
}

// neighbor returns the router that the direction-d egress wire of (cx,cy)
// lands on, wraparound included.
func (m *Mesh) neighbor(cx, cy, d int) (int, int) {
	switch d {
	case dirEast:
		if cx++; cx == m.W {
			cx = 0
		}
	case dirWest:
		if cx--; cx < 0 {
			cx = m.W - 1
		}
	case dirSouth:
		if cy++; cy == m.H {
			cy = 0
		}
	case dirNorth:
		if cy--; cy < 0 {
			cy = m.H - 1
		}
	}
	return cx, cy
}

// expressTraverse attempts the express path for a granted traversal from
// router (x,y) to router (dx,dy): claim every wire on the route up front,
// run each router's pipeline inline, and schedule one delivery event at
// the analytically-known arrival time. Returns false — having claimed
// nothing — when the route is not express-eligible, so the caller falls
// back to hop-by-hop with no state to unwind.
//
// Eligibility (checked before any claim):
//
//   - No route router carries an internal fault point (hook or
//     probabilistic flip): process() must stay deterministic and
//     RNG-silent when run at claim time instead of arrival time.
//   - Every route wire is ExpressClaimable — no wire-attached error
//     model, no fault hook installed or pending (volatile wires marked by
//     fault scripts). In-flight flits do not block: on an eligible path
//     every flit claims its wires at injection (granted flits here,
//     struck flits via scheduleWalk), so claims — and therefore per-wire
//     serialization and per-path delivery — follow injection order, which
//     is ISN's in-order contract. Eligibility is a property of the route,
//     not the flit, so a path is never in a mixed claim regime.
//
// The claim math per hop is exactly the SendAfter fold — serialization
// starts at max(arrival+latency, wire-free) — so on same-path-only
// traffic express timing is bit-identical to hop-by-hop. Under
// cross-traffic the claim *order* changes (the whole route is claimed at
// injection), which is a change to the fabric model itself and, like the
// PR 5 grant policy, applies identically to fast-path and byte-level
// runs.
func (m *Mesh) expressTraverse(f *flit.Flit, x, y, dx, dy int) bool {
	cx, cy := x, y
	for {
		r := m.Routers[cx][cy]
		if r.InternalHook != nil || r.InternalBitFlipProb > 0 {
			return false
		}
		d := m.routeDir(cx, cy, dx, dy)
		if d < 0 {
			break
		}
		w := m.out[cx][cy][d]
		if w == nil || !w.ExpressClaimable() {
			return false
		}
		cx, cy = m.neighbor(cx, cy, d)
	}
	// Claim walk. Running process() at claim time is unobservable: for an
	// eligible route it touches only the flit image and the router stats,
	// draws no RNG, and cannot drop a granted (hence uncorrupted,
	// CRC-valid) flit.
	arrive := m.Eng.Now()
	cx, cy = x, y
	for {
		r := m.Routers[cx][cy]
		if !r.process(f) {
			// Unreachable for eligible routes; keep the drop semantics in
			// case a future pipeline stage can reject clean flits.
			flit.Release(f)
			return true
		}
		d := m.routeDir(cx, cy, dx, dy)
		if d < 0 {
			r.Stats.DeliveredLocal++
			m.Eng.AtArg(arrive+r.Latency, m.localSink[cx][cy], f)
			return true
		}
		r.Stats.Forwarded++
		if m.paths != nil {
			f.TakePathPass()
		}
		arrive = m.out[cx][cy][d].Reserve(arrive + r.Latency)
		cx, cy = m.neighbor(cx, cy, d)
	}
}

// hopArrival wraps router (x,y)'s pipeline for an inter-router wire: a
// path pass (whole traversal pre-consumed at injection) skips channel
// work entirely; otherwise this crossing consumes one unit of the flit's
// path schedule.
func (m *Mesh) hopArrival(x, y int) func(*flit.Flit) {
	pipeline := m.routerIngress(x, y)
	if m.paths == nil {
		return pipeline
	}
	return func(f *flit.Flit) {
		if !f.TakePathPass() {
			src := f.Payload()[flit.SrcRouteOffset]
			dst := f.Payload()[flit.RouteOffset]
			link.CrossPathUnit(m.pathSched(src, dst), m.fec, f)
		}
		pipeline(f)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NodeID returns the routing tag of node (x,y).
func (m *Mesh) NodeID(x, y int) byte {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		panic("switchfab: node out of mesh")
	}
	return byte(y*m.W + x)
}

// nodeXY decodes a routing tag; ok is false for tags outside the mesh.
func (m *Mesh) nodeXY(id byte) (x, y int, ok bool) {
	n := int(id)
	if n >= m.W*m.H {
		return 0, 0, false
	}
	return n % m.W, n / m.W, true
}

// AttachNode installs the delivery function of node (x,y) and returns the
// wire its peers transmit into.
func (m *Mesh) AttachNode(x, y int, deliver func(*flit.Flit)) *link.Wire {
	if deliver == nil {
		panic("switchfab: nil node deliver")
	}
	m.locals[x][y] = deliver
	return m.ingress[x][y]
}

// Wires returns every wire for bulk channel/fault attachment (inter-router
// and node-ingress).
func (m *Mesh) Wires() []*link.Wire { return m.wires }

// InterRouterWire returns the wire from router (x1,y1) to the adjacent
// router (x2,y2), for targeted fault injection on one hop. On a torus the
// wraparound edges are adjacent too: (W-1,y)→(0,y) is that row's East wrap
// wire, (x,H-1)→(x,0) the column's South one, and their reverses
// West/North.
func (m *Mesh) InterRouterWire(x1, y1, x2, y2 int) *link.Wire {
	var w *link.Wire
	switch {
	case x2 == x1+1 && y2 == y1:
		w = m.out[x1][y1][dirEast]
	case x2 == x1-1 && y2 == y1:
		w = m.out[x1][y1][dirWest]
	case x2 == x1 && y2 == y1+1:
		w = m.out[x1][y1][dirSouth]
	case x2 == x1 && y2 == y1-1:
		w = m.out[x1][y1][dirNorth]
	case m.wrap && m.W > 1 && y2 == y1 && x1 == m.W-1 && x2 == 0:
		w = m.out[x1][y1][dirEast]
	case m.wrap && m.W > 1 && y2 == y1 && x1 == 0 && x2 == m.W-1:
		w = m.out[x1][y1][dirWest]
	case m.wrap && m.H > 1 && x2 == x1 && y1 == m.H-1 && y2 == 0:
		w = m.out[x1][y1][dirSouth]
	case m.wrap && m.H > 1 && x2 == x1 && y1 == 0 && y2 == m.H-1:
		w = m.out[x1][y1][dirNorth]
	}
	if w == nil {
		panic(fmt.Sprintf("switchfab: (%d,%d)-(%d,%d) are not adjacent mesh routers", x1, y1, x2, y2))
	}
	return w
}

// routerIngress builds the deliver function of router (x,y): run the
// switch pipeline, then forward by XY dimension-ordered routing. The
// router latency is folded into the egress wire claim (SendAfter), so a
// multi-hop traversal costs one engine event per hop — the wire arrival —
// instead of two. Local deliveries have no egress wire and keep their
// latency event so the node still receives at arrival+Latency.
func (m *Mesh) routerIngress(x, y int) func(*flit.Flit) {
	r := m.Routers[x][y]
	// The stable local-delivery sink per router (shared with the express
	// delivery event), so the per-flit latency schedule carries only the
	// flit instead of allocating a closure.
	deliverLocal := m.localSink[x][y]
	return func(f *flit.Flit) {
		if !r.process(f) {
			flit.Release(f)
			return
		}
		dx, dy, ok := m.nodeXY(f.Payload()[flit.RouteOffset])
		sx, sy := 0, 0
		if ok {
			sx = m.dimStep(x, dx, m.W)
			if sx == 0 {
				sy = m.dimStep(y, dy, m.H)
			}
		}
		switch {
		case !ok:
			r.Stats.DroppedNoRoute++
			flit.Release(f)
		case sx > 0:
			m.forwardTo(r, f, m.out[x][y][dirEast])
		case sx < 0:
			m.forwardTo(r, f, m.out[x][y][dirWest])
		case sy > 0:
			m.forwardTo(r, f, m.out[x][y][dirSouth])
		case sy < 0:
			m.forwardTo(r, f, m.out[x][y][dirNorth])
		default:
			// Local delivery is accounted on its own: counting it as a
			// forward inflated TotalStats().Forwarded by one per delivered
			// flit relative to the flit's actual inter-router hops (see
			// the per-hop audit in internal/core's mesh stats test).
			r.Stats.DeliveredLocal++
			if r.Latency > 0 {
				m.Eng.ScheduleArg(r.Latency, deliverLocal, f)
			} else {
				deliverLocal(f)
			}
		}
	}
}

func (m *Mesh) forwardTo(r *Switch, f *flit.Flit, w *link.Wire) {
	if w == nil {
		r.Stats.DroppedNoRoute++
		flit.Release(f)
		return
	}
	r.Stats.Forwarded++
	w.SendAfter(f, m.Eng.Now()+r.Latency)
}

// TotalStats sums statistics across every router (QueuePeak aggregates by
// max — it is a depth, not a count). Wire-held queue peaks are synced into
// the router stats first.
func (m *Mesh) TotalStats() Stats {
	m.SyncQueuePeaks()
	var t Stats
	for _, col := range m.Routers {
		for _, r := range col {
			t.FlitsIn += r.Stats.FlitsIn
			t.Forwarded += r.Stats.Forwarded
			t.DeliveredLocal += r.Stats.DeliveredLocal
			t.DroppedUncorrectable += r.Stats.DroppedUncorrectable
			t.DroppedCRC += r.Stats.DroppedCRC
			t.DroppedNoRoute += r.Stats.DroppedNoRoute
			t.CorrectedFlits += r.Stats.CorrectedFlits
			t.CorrectedSymbols += r.Stats.CorrectedSymbols
			t.InternalCorruptions += r.Stats.InternalCorruptions
			if r.Stats.QueuePeak > t.QueuePeak {
				t.QueuePeak = r.Stats.QueuePeak
			}
		}
	}
	return t
}

// SyncQueuePeaks folds each router's wire queue high-water marks into its
// Stats.QueuePeak: the max across the router's egress wires and its
// node-ingress wire (the node's injection backlog). Queue depth lives on
// the wires — the mesh is output-queued, a forward queues on the egress
// wire's serialization window — so the per-switch counter is derived
// rather than incremented inline. Express reservations use the same claim
// accounting as hop-by-hop sends, so the peaks are identical across
// express, fast-path, and byte-level runs.
func (m *Mesh) SyncQueuePeaks() {
	for x := 0; x < m.W; x++ {
		for y := 0; y < m.H; y++ {
			p := m.ingress[x][y].QueuePeak()
			for d := 0; d < meshDirs; d++ {
				if w := m.out[x][y][d]; w != nil && w.QueuePeak() > p {
					p = w.QueuePeak()
				}
			}
			m.Routers[x][y].Stats.QueuePeak = p
		}
	}
}

// NodeQueuePeaks returns the per-node queue-depth high-water marks,
// indexed [y][x] (rows of the mesh, matching node-ID order) — the real
// backpressure numbers of the single-sink/incast scenarios.
func (m *Mesh) NodeQueuePeaks() [][]uint64 {
	m.SyncQueuePeaks()
	out := make([][]uint64, m.H)
	for y := 0; y < m.H; y++ {
		out[y] = make([]uint64, m.W)
		for x := 0; x < m.W; x++ {
			out[y][x] = m.Routers[x][y].Stats.QueuePeak
		}
	}
	return out
}

// HookDrops sums the flits silently dropped by scripted fault hooks
// across every wire of the mesh.
func (m *Mesh) HookDrops() uint64 {
	var t uint64
	for _, w := range m.wires {
		t += w.HookDropped
	}
	return t
}

// PathStat is the channel accounting of one source→destination shared
// schedule.
type PathStat struct {
	Src, Dst                                         byte
	BitsSeen, BitsFlipped, ErrorEvents, UnitsTouched uint64
}

// PathStats snapshots every path schedule's accounting, ordered by
// (src, dst) — the mesh-level analogue of reading each wire's Channel
// stats, used by the fast-vs-slow differential suite.
func (m *Mesh) PathStats() []PathStat {
	if m.paths == nil {
		return nil
	}
	keys := make([]int, 0, len(m.paths))
	for k := range m.paths {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	out := make([]PathStat, 0, len(keys))
	for _, k := range keys {
		ch := m.paths[uint16(k)].Channel()
		out = append(out, PathStat{
			Src: byte(k >> 8), Dst: byte(k),
			BitsSeen: ch.BitsSeen, BitsFlipped: ch.BitsFlipped,
			ErrorEvents: ch.ErrorEvents, UnitsTouched: ch.UnitsTouched,
		})
	}
	return out
}

// MeshNode bundles the per-flow link peers of one mesh node: one peer per
// remote node it talks to, demultiplexed by source tag on delivery.
type MeshNode struct {
	ID        byte
	peers     map[byte]*link.Peer
	attachAll meshAttach
}

// NewMeshNode attaches a node at (x,y) and returns its peer manager.
// linkCfg is the base link configuration; protocol and routing tags are
// filled per flow.
func NewMeshNode(m *Mesh, x, y int, linkCfg link.Config) *MeshNode {
	n := &MeshNode{ID: m.NodeID(x, y), peers: make(map[byte]*link.Peer)}
	ingress := m.AttachNode(x, y, func(f *flit.Flit) {
		src := f.Payload()[flit.SrcRouteOffset]
		if p, ok := n.peers[src]; ok {
			p.Receive(f)
		}
	})
	n.attachAll = func(remote byte) *link.Peer {
		cfg := linkCfg
		cfg.StampRoute = true
		cfg.SrcTag = n.ID
		cfg.RouteTag = remote
		p := link.NewPeer(fmt.Sprintf("n%d->n%d", n.ID, remote), m.Eng, cfg)
		p.Attach(ingress)
		n.peers[remote] = p
		return p
	}
	return n
}

// attachAll creates the peer for a remote node (set in NewMeshNode).
type meshAttach = func(remote byte) *link.Peer

// PeerTo returns (creating on first use) this node's link peer for the
// flow to the given remote node.
func (n *MeshNode) PeerTo(remote byte) *link.Peer {
	if p, ok := n.peers[remote]; ok {
		return p
	}
	return n.attachAll(remote)
}
