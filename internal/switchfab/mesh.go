package switchfab

import (
	"fmt"
	"sort"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/rs"
	"repro/internal/sim"
)

// Mesh is a W×H 2D-mesh Network-on-Chip built from the same switching
// elements as the scale-out chains — the paper's future-work direction
// ("extending ISN to other protocols and systems, such as Network-on-Chip
// and chiplet interconnects"). Every hop terminates FEC; under ModeRXL
// the end-to-end CRC (with ISN) passes through every router untouched, so
// a flit crossing ten routers gets the same drop/corruption guarantees as
// one crossing a single switch.
//
// Routing is dimension-ordered (XY): a flit first travels along X to its
// destination column, then along Y — deadlock-free and deterministic,
// which matters because ISN requires in-order single-path delivery
// (Section 5 rules out multi-path for CXL-class protocols).
//
// Error injection is schedule-driven per path, not per wire: every
// (source, destination) pair lazily owns one phy.SharedSchedule, and a
// flit's whole XY traversal consumes one hops-wide window of that stream.
// At the injection wire a clean window grants the flit a path pass, so
// every downstream router crossing skips channel work entirely; struck
// traversals consume the stream hop by hop, landing corruption on the
// exact crossing the schedule assigns it (where that hop's FEC
// termination sees it). The grant policy applies identically to fast-path
// and byte-level flits — only the per-hop byte work differs — which is
// what keeps the two bit-identical (internal/core's mesh differential
// suite).
type Mesh struct {
	W, H int
	Eng  *sim.Engine
	// Routers indexes the switching elements as [x][y].
	Routers [][]*Switch

	// out[x][y][d] is the egress wire of router (x,y) toward direction d.
	out [][][meshDirs]*link.Wire
	// locals[x][y] delivers flits addressed to node (x,y).
	locals [][]func(*flit.Flit)
	// ingress[x][y] is the wire a node uses to inject at its router.
	ingress [][]*link.Wire

	wires []*link.Wire

	// wrap marks torus mode: the row/column rings close and routing takes
	// the minimal direction around each ring.
	wrap bool

	// Per-path error-event schedules, keyed src<<8|dst, created on first
	// traffic from a dedicated RNG lineage (deterministic per seed and
	// traffic order). nil maps mean BER 0 — no error model at all.
	paths   map[uint16]*phy.SharedSchedule
	pathRNG *phy.RNG
	ber     float64
	burst   float64
	// berScale is the fault-campaign multiplier currently applied on top
	// of the configured BER (1 outside storm/degrade windows). It steers
	// schedules created after the scale change; SetPathBERScale retunes
	// the already-existing ones.
	berScale float64
	// fec materializes deferred seals when a schedule strikes a deferred
	// flit mid-path.
	fec *rs.Interleaved
}

// Mesh directions.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	meshDirs
)

// MeshConfig carries per-hop timing and the channel error model.
type MeshConfig struct {
	Mode          Mode
	Serialization sim.Time
	Propagation   sim.Time
	RouterLatency sim.Time
	// BER and BurstProb configure the per-path shared error schedules
	// (0 = clean).
	BER       float64
	BurstProb float64
	Seed      uint64
	// Wrap closes the row and column rings, turning the mesh into a 2D
	// torus: every router gains wraparound wires (when the dimension has
	// at least two routers) and dimension-ordered routing takes the
	// minimal direction around each ring, breaking exact ties toward
	// east/south. Everything else — per-hop FEC termination, the (src,dst)
	// routing-tag schedule keying, whole-traversal grants at the ingress
	// wire — is unchanged; only the hop count of a traversal shrinks.
	Wrap bool
}

// DefaultMeshConfig returns NoC-scale timing: 2 ns flits, 1 ns hops,
// 2 ns router traversal.
func DefaultMeshConfig(mode Mode) MeshConfig {
	return MeshConfig{
		Mode:          mode,
		Serialization: sim.FlitTime,
		Propagation:   sim.Nanosecond,
		RouterLatency: 2 * sim.Nanosecond,
	}
}

// NewMesh builds the W×H mesh. Node IDs are y*W+x, carried in the flit's
// routing byte; W*H must fit in one byte.
func NewMesh(eng *sim.Engine, w, h int, cfg MeshConfig) *Mesh {
	if w < 1 || h < 1 || w*h > 256 {
		panic(fmt.Sprintf("switchfab: mesh %dx%d out of range", w, h))
	}
	m := &Mesh{W: w, H: h, Eng: eng, wrap: cfg.Wrap, berScale: 1}
	if cfg.BER > 0 {
		m.paths = make(map[uint16]*phy.SharedSchedule)
		m.pathRNG = phy.NewRNG(cfg.Seed)
		m.ber, m.burst = cfg.BER, cfg.BurstProb
		m.fec = flit.NewFEC()
	}

	m.Routers = make([][]*Switch, w)
	m.out = make([][][meshDirs]*link.Wire, w)
	m.locals = make([][]func(*flit.Flit), w)
	m.ingress = make([][]*link.Wire, w)
	for x := 0; x < w; x++ {
		m.Routers[x] = make([]*Switch, h)
		m.out[x] = make([][meshDirs]*link.Wire, h)
		m.locals[x] = make([]func(*flit.Flit), h)
		m.ingress[x] = make([]*link.Wire, h)
		for y := 0; y < h; y++ {
			m.Routers[x][y] = NewSwitch(fmt.Sprintf("R%d.%d", x, y), eng, cfg.Mode, cfg.RouterLatency, nil)
		}
	}

	mkWire := func(deliver func(*flit.Flit)) *link.Wire {
		wr := link.NewWire(eng, cfg.Serialization, cfg.Propagation, deliver)
		m.wires = append(m.wires, wr)
		return wr
	}

	// Inter-router wires: each delivers into the neighbor's pipeline
	// behind a hop crossing of the flit's path schedule. Node-ingress
	// wires are the injection points where whole-path grants are taken.
	// Under Wrap the boundary routers gain wraparound wires in the same
	// direction slots (east from x=W-1 lands on x=0, and so on), so the
	// forwarding switch below needs no wrap-specific cases.
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				m.out[x][y][dirEast] = mkWire(m.hopArrival(x+1, y))
			} else if cfg.Wrap && w > 1 {
				m.out[x][y][dirEast] = mkWire(m.hopArrival(0, y))
			}
			if x > 0 {
				m.out[x][y][dirWest] = mkWire(m.hopArrival(x-1, y))
			} else if cfg.Wrap && w > 1 {
				m.out[x][y][dirWest] = mkWire(m.hopArrival(w-1, y))
			}
			if y+1 < h {
				m.out[x][y][dirSouth] = mkWire(m.hopArrival(x, y+1))
			} else if cfg.Wrap && h > 1 {
				m.out[x][y][dirSouth] = mkWire(m.hopArrival(x, 0))
			}
			if y > 0 {
				m.out[x][y][dirNorth] = mkWire(m.hopArrival(x, y-1))
			} else if cfg.Wrap && h > 1 {
				m.out[x][y][dirNorth] = mkWire(m.hopArrival(x, h-1))
			}
			m.ingress[x][y] = mkWire(m.injectArrival(x, y))
		}
	}
	return m
}

// dimDist is the router count a flit crosses along one dimension: the
// absolute distance on a mesh, the minimal ring distance on a torus.
func (m *Mesh) dimDist(cur, dst, size int) int {
	d := abs(dst - cur)
	if m.wrap && size-d < d {
		d = size - d
	}
	return d
}

// dimStep is the per-dimension routing decision at a router: -1, 0, or +1
// toward the destination coordinate. On a torus the minimal ring direction
// wins; exact ties (even ring sizes, antipodal destination) break toward
// +1 (east/south) so routes stay deterministic.
func (m *Mesh) dimStep(cur, dst, size int) int {
	if cur == dst {
		return 0
	}
	if m.wrap {
		fwd := dst - cur
		if fwd < 0 {
			fwd += size
		}
		if fwd <= size-fwd {
			return 1
		}
		return -1
	}
	if dst > cur {
		return 1
	}
	return -1
}

// HopsBetween counts the wire crossings of a (sx,sy)→(dx,dy) traversal:
// the node-ingress wire plus the routing distance, topology-aware. It is
// the hop count whole-traversal grants consume at injection.
func (m *Mesh) HopsBetween(sx, sy, dx, dy int) int {
	return 1 + m.dimDist(sx, dx, m.W) + m.dimDist(sy, dy, m.H)
}

// pathKey identifies a shared schedule by the flit's routing tags. Both
// tags sit inside the CRC-protected payload, so a corrupted tag resolves
// the same (wrong) schedule on the fast and byte-level paths alike.
func pathKey(src, dst byte) uint16 { return uint16(src)<<8 | uint16(dst) }

// pathSched returns (creating on first use) the shared error schedule of
// the src→dst path, at the BER currently in force (base × fault scale).
func (m *Mesh) pathSched(src, dst byte) *phy.SharedSchedule {
	k := pathKey(src, dst)
	s, ok := m.paths[k]
	if !ok {
		s = phy.NewSharedSchedule(m.ber*m.berScale, m.burst, m.pathRNG.Split(), flit.Bits)
		m.paths[k] = s
	}
	return s
}

// SetPathBERScale multiplies the configured BER of every path schedule —
// the mesh-wide primitive behind scripted lane-degrade and BER-storm
// campaigns (scale 1 restores the configured rate). Existing schedules
// redraw their pending error gap at the new rate from their own RNG
// streams, and schedules created later inherit the scale, so the effect
// is identical no matter which paths have carried traffic yet. On a
// clean mesh (BER 0) there is no error model to scale and the call is a
// no-op. Callers on the fast==byte-level differential contract must
// apply scale changes as simulation events, so both runs retune each
// schedule at the same point of its consumption stream.
func (m *Mesh) SetPathBERScale(scale float64) {
	if scale <= 0 {
		panic("switchfab: non-positive BER scale")
	}
	m.berScale = scale
	if m.paths == nil {
		return
	}
	// Iteration order does not matter: each schedule redraws from its own
	// RNG stream, independent of the others.
	for _, s := range m.paths {
		s.Channel().SetBER(m.ber * scale)
	}
}

// injectArrival wraps router (x,y)'s pipeline for its node-ingress wire:
// the flit's whole traversal opens here. hops counts every wire crossing
// of the XY route — this ingress wire plus the Manhattan distance to the
// destination router; flits with an unroutable destination consume one
// crossing and die at this router.
func (m *Mesh) injectArrival(x, y int) func(*flit.Flit) {
	pipeline := m.routerIngress(x, y)
	if m.paths == nil {
		return pipeline
	}
	return func(f *flit.Flit) {
		src := f.Payload()[flit.SrcRouteOffset]
		dst := f.Payload()[flit.RouteOffset]
		hops := 1
		if dx, dy, ok := m.nodeXY(dst); ok {
			hops = m.HopsBetween(x, y, dx, dy)
		}
		link.BeginPathTraversal(m.pathSched(src, dst), m.fec, f, hops)
		pipeline(f)
	}
}

// hopArrival wraps router (x,y)'s pipeline for an inter-router wire: a
// path pass (whole traversal pre-consumed at injection) skips channel
// work entirely; otherwise this crossing consumes one unit of the flit's
// path schedule.
func (m *Mesh) hopArrival(x, y int) func(*flit.Flit) {
	pipeline := m.routerIngress(x, y)
	if m.paths == nil {
		return pipeline
	}
	return func(f *flit.Flit) {
		if !f.TakePathPass() {
			src := f.Payload()[flit.SrcRouteOffset]
			dst := f.Payload()[flit.RouteOffset]
			link.CrossPathUnit(m.pathSched(src, dst), m.fec, f)
		}
		pipeline(f)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NodeID returns the routing tag of node (x,y).
func (m *Mesh) NodeID(x, y int) byte {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		panic("switchfab: node out of mesh")
	}
	return byte(y*m.W + x)
}

// nodeXY decodes a routing tag; ok is false for tags outside the mesh.
func (m *Mesh) nodeXY(id byte) (x, y int, ok bool) {
	n := int(id)
	if n >= m.W*m.H {
		return 0, 0, false
	}
	return n % m.W, n / m.W, true
}

// AttachNode installs the delivery function of node (x,y) and returns the
// wire its peers transmit into.
func (m *Mesh) AttachNode(x, y int, deliver func(*flit.Flit)) *link.Wire {
	if deliver == nil {
		panic("switchfab: nil node deliver")
	}
	m.locals[x][y] = deliver
	return m.ingress[x][y]
}

// Wires returns every wire for bulk channel/fault attachment (inter-router
// and node-ingress).
func (m *Mesh) Wires() []*link.Wire { return m.wires }

// InterRouterWire returns the wire from router (x1,y1) to the adjacent
// router (x2,y2), for targeted fault injection on one hop. On a torus the
// wraparound edges are adjacent too: (W-1,y)→(0,y) is that row's East wrap
// wire, (x,H-1)→(x,0) the column's South one, and their reverses
// West/North.
func (m *Mesh) InterRouterWire(x1, y1, x2, y2 int) *link.Wire {
	var w *link.Wire
	switch {
	case x2 == x1+1 && y2 == y1:
		w = m.out[x1][y1][dirEast]
	case x2 == x1-1 && y2 == y1:
		w = m.out[x1][y1][dirWest]
	case x2 == x1 && y2 == y1+1:
		w = m.out[x1][y1][dirSouth]
	case x2 == x1 && y2 == y1-1:
		w = m.out[x1][y1][dirNorth]
	case m.wrap && m.W > 1 && y2 == y1 && x1 == m.W-1 && x2 == 0:
		w = m.out[x1][y1][dirEast]
	case m.wrap && m.W > 1 && y2 == y1 && x1 == 0 && x2 == m.W-1:
		w = m.out[x1][y1][dirWest]
	case m.wrap && m.H > 1 && x2 == x1 && y1 == m.H-1 && y2 == 0:
		w = m.out[x1][y1][dirSouth]
	case m.wrap && m.H > 1 && x2 == x1 && y1 == 0 && y2 == m.H-1:
		w = m.out[x1][y1][dirNorth]
	}
	if w == nil {
		panic(fmt.Sprintf("switchfab: (%d,%d)-(%d,%d) are not adjacent mesh routers", x1, y1, x2, y2))
	}
	return w
}

// routerIngress builds the deliver function of router (x,y): run the
// switch pipeline, then forward by XY dimension-ordered routing. The
// router latency is folded into the egress wire claim (SendAfter), so a
// multi-hop traversal costs one engine event per hop — the wire arrival —
// instead of two. Local deliveries have no egress wire and keep their
// latency event so the node still receives at arrival+Latency.
func (m *Mesh) routerIngress(x, y int) func(*flit.Flit) {
	r := m.Routers[x][y]
	// One stable local-delivery sink per router, so the per-flit latency
	// schedule carries only the flit instead of allocating a closure.
	deliverLocal := func(p interface{}) {
		f := p.(*flit.Flit)
		if m.locals[x][y] != nil {
			m.locals[x][y](f)
		} else {
			flit.Release(f)
		}
	}
	return func(f *flit.Flit) {
		if !r.process(f) {
			flit.Release(f)
			return
		}
		dx, dy, ok := m.nodeXY(f.Payload()[flit.RouteOffset])
		sx, sy := 0, 0
		if ok {
			sx = m.dimStep(x, dx, m.W)
			if sx == 0 {
				sy = m.dimStep(y, dy, m.H)
			}
		}
		switch {
		case !ok:
			r.Stats.DroppedNoRoute++
			flit.Release(f)
		case sx > 0:
			m.forwardTo(r, f, m.out[x][y][dirEast])
		case sx < 0:
			m.forwardTo(r, f, m.out[x][y][dirWest])
		case sy > 0:
			m.forwardTo(r, f, m.out[x][y][dirSouth])
		case sy < 0:
			m.forwardTo(r, f, m.out[x][y][dirNorth])
		default:
			// Local delivery is accounted on its own: counting it as a
			// forward inflated TotalStats().Forwarded by one per delivered
			// flit relative to the flit's actual inter-router hops (see
			// the per-hop audit in internal/core's mesh stats test).
			r.Stats.DeliveredLocal++
			if r.Latency > 0 {
				m.Eng.ScheduleArg(r.Latency, deliverLocal, f)
			} else {
				deliverLocal(f)
			}
		}
	}
}

func (m *Mesh) forwardTo(r *Switch, f *flit.Flit, w *link.Wire) {
	if w == nil {
		r.Stats.DroppedNoRoute++
		flit.Release(f)
		return
	}
	r.Stats.Forwarded++
	w.SendAfter(f, m.Eng.Now()+r.Latency)
}

// TotalStats sums statistics across every router.
func (m *Mesh) TotalStats() Stats {
	var t Stats
	for _, col := range m.Routers {
		for _, r := range col {
			t.FlitsIn += r.Stats.FlitsIn
			t.Forwarded += r.Stats.Forwarded
			t.DeliveredLocal += r.Stats.DeliveredLocal
			t.DroppedUncorrectable += r.Stats.DroppedUncorrectable
			t.DroppedCRC += r.Stats.DroppedCRC
			t.DroppedNoRoute += r.Stats.DroppedNoRoute
			t.CorrectedFlits += r.Stats.CorrectedFlits
			t.CorrectedSymbols += r.Stats.CorrectedSymbols
			t.InternalCorruptions += r.Stats.InternalCorruptions
		}
	}
	return t
}

// HookDrops sums the flits silently dropped by scripted fault hooks
// across every wire of the mesh.
func (m *Mesh) HookDrops() uint64 {
	var t uint64
	for _, w := range m.wires {
		t += w.HookDropped
	}
	return t
}

// PathStat is the channel accounting of one source→destination shared
// schedule.
type PathStat struct {
	Src, Dst                                         byte
	BitsSeen, BitsFlipped, ErrorEvents, UnitsTouched uint64
}

// PathStats snapshots every path schedule's accounting, ordered by
// (src, dst) — the mesh-level analogue of reading each wire's Channel
// stats, used by the fast-vs-slow differential suite.
func (m *Mesh) PathStats() []PathStat {
	if m.paths == nil {
		return nil
	}
	keys := make([]int, 0, len(m.paths))
	for k := range m.paths {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	out := make([]PathStat, 0, len(keys))
	for _, k := range keys {
		ch := m.paths[uint16(k)].Channel()
		out = append(out, PathStat{
			Src: byte(k >> 8), Dst: byte(k),
			BitsSeen: ch.BitsSeen, BitsFlipped: ch.BitsFlipped,
			ErrorEvents: ch.ErrorEvents, UnitsTouched: ch.UnitsTouched,
		})
	}
	return out
}

// MeshNode bundles the per-flow link peers of one mesh node: one peer per
// remote node it talks to, demultiplexed by source tag on delivery.
type MeshNode struct {
	ID        byte
	peers     map[byte]*link.Peer
	attachAll meshAttach
}

// NewMeshNode attaches a node at (x,y) and returns its peer manager.
// linkCfg is the base link configuration; protocol and routing tags are
// filled per flow.
func NewMeshNode(m *Mesh, x, y int, linkCfg link.Config) *MeshNode {
	n := &MeshNode{ID: m.NodeID(x, y), peers: make(map[byte]*link.Peer)}
	ingress := m.AttachNode(x, y, func(f *flit.Flit) {
		src := f.Payload()[flit.SrcRouteOffset]
		if p, ok := n.peers[src]; ok {
			p.Receive(f)
		}
	})
	n.attachAll = func(remote byte) *link.Peer {
		cfg := linkCfg
		cfg.StampRoute = true
		cfg.SrcTag = n.ID
		cfg.RouteTag = remote
		p := link.NewPeer(fmt.Sprintf("n%d->n%d", n.ID, remote), m.Eng, cfg)
		p.Attach(ingress)
		n.peers[remote] = p
		return p
	}
	return n
}

// attachAll creates the peer for a remote node (set in NewMeshNode).
type meshAttach = func(remote byte) *link.Peer

// PeerTo returns (creating on first use) this node's link peer for the
// flow to the given remote node.
func (n *MeshNode) PeerTo(remote byte) *link.Peer {
	if p, ok := n.peers[remote]; ok {
		return p
	}
	return n.attachAll(remote)
}
