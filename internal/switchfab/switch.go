// Package switchfab models the switching devices that turn point-to-point
// CXL links into scale-out fabrics — and that silently drop uncorrectable
// flits, the failure mode at the center of the paper (Sections 2.3, 6.4).
//
// A switch terminates the FEC on ingress (decode, correct, or drop) and
// regenerates it on egress. The two protocol stacks differ in what happens
// to the CRC:
//
//   - ModeCXL: the CRC is a link-layer mechanism, so the switch verifies it
//     on ingress (dropping silently on failure) and regenerates it on
//     egress. Anything corrupted *inside* the switch — after the check,
//     before the regeneration — is blessed by the fresh CRC and becomes
//     undetectable downstream (Section 6.3).
//
//   - ModeRXL: the CRC is transport-layer (ECRC). The switch never touches
//     it; only the FEC is terminated per hop. Internal corruption therefore
//     survives to the endpoint, where the 64-bit ECRC catches it.
//
// Switches are stateless with respect to sequence numbers in both modes —
// in RXL because ISN validation happens only at endpoints (the design goal
// of Section 6.1), in CXL because the spec's switches simply do not track
// flow state.
package switchfab

import (
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/rs"
	"repro/internal/sim"
)

// Mode selects the protocol stack the switch participates in.
type Mode int

const (
	// ModeCXL terminates CRC and FEC per hop (baseline stack, Fig. 7a).
	ModeCXL Mode = iota
	// ModeRXL terminates only FEC per hop; CRC passes through end-to-end
	// (RXL stack, Fig. 7b).
	ModeRXL
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeRXL {
		return "RXL"
	}
	return "CXL"
}

// Stats counts per-switch events.
type Stats struct {
	FlitsIn              uint64
	Forwarded            uint64 // flits sent onward to another hop
	DeliveredLocal       uint64 // mesh routers: flits handed to the attached node
	DroppedUncorrectable uint64 // FEC-detected, silently discarded
	DroppedCRC           uint64 // ModeCXL only: link CRC failures discarded
	DroppedNoRoute       uint64 // crossbar: unknown destination
	CorrectedFlits       uint64
	CorrectedSymbols     uint64
	InternalCorruptions  uint64 // injected internal faults
	// QueuePeak is the high-water mark of the switch's output queues —
	// the deepest serialization backlog any of its egress wires (or, for
	// mesh routers, its node-ingress wire) ever reached, in flits. It is
	// the per-node backpressure number of the incast/single-sink
	// scenarios; mesh fabrics fold it in via Mesh.SyncQueuePeaks. In
	// totals it aggregates by max, not sum.
	QueuePeak uint64
}

// Switch is a single switching element processing flits between two
// endpoints (one per direction via Pipeline). It holds no per-connection
// state.
type Switch struct {
	Name string
	Eng  *sim.Engine
	Mode Mode

	// Latency is the ingress-to-egress processing delay.
	Latency sim.Time

	// InternalBitFlipProb is the per-flit probability of a single-bit
	// internal fault (buffer or datapath corruption) occurring between
	// ingress checking and egress re-encoding.
	InternalBitFlipProb float64

	// InternalHook, when non-nil, may mutate the flit at the internal
	// fault point; return true to count it as a corruption. Used by the
	// deterministic Section 6.3 experiments.
	InternalHook func(*flit.Flit) bool

	fec *rs.Interleaved
	rng *phy.RNG

	Stats Stats
}

// NewSwitch constructs a switch. rng may be nil if no probabilistic
// internal faults are configured.
func NewSwitch(name string, eng *sim.Engine, mode Mode, latency sim.Time, rng *phy.RNG) *Switch {
	return &Switch{Name: name, Eng: eng, Mode: mode, Latency: latency, fec: flit.NewFEC(), rng: rng}
}

// SeedInternalFaults enables probabilistic internal corruption: each flit
// suffers a single-bit datapath flip with probability prob, drawn from
// rng (Section 6.3).
func (s *Switch) SeedInternalFaults(prob float64, rng *phy.RNG) {
	s.InternalBitFlipProb = prob
	s.rng = rng
}

// Pipeline returns the ingress function for one direction, forwarding
// processed flits onto egress. Use it as the deliver callback of the
// ingress wire.
//
// The ingress-to-egress latency is folded into the egress wire claim
// (SendAfter): the flit's serialization starts no earlier than
// arrival+Latency, which lands it downstream at exactly the time a
// separate forward event would — without scheduling that event. Per-hop
// event count is what the multi-hop fabrics pay the engine for.
func (s *Switch) Pipeline(egress *link.Wire) func(*flit.Flit) {
	return func(f *flit.Flit) {
		if !s.process(f) {
			flit.Release(f)
			return
		}
		s.forward(f, egress)
	}
}

func (s *Switch) forward(f *flit.Flit, egress *link.Wire) {
	s.Stats.Forwarded++
	egress.SendAfter(f, s.Eng.Now()+s.Latency)
}

// process runs the ingress/egress pipeline on f in place. It returns false
// if the flit was discarded.
//
// Clean flits cross in O(1): the FEC decode and CRC check below
// short-circuit inside the flit layer, only the internal fault point draws
// (so the RNG stream matches the byte-level reference), and the egress
// regeneration resolves to a no-op on an image that never changed.
func (s *Switch) process(f *flit.Flit) bool {
	s.Stats.FlitsIn++

	// Ingress: FEC decode. Uncorrectable flits are discarded without any
	// notification to the destination — the silent drop (Section 2.3).
	res := f.DecodeFEC(s.fec)
	switch res.Status {
	case rs.StatusUncorrectable:
		s.Stats.DroppedUncorrectable++
		return false
	case rs.StatusCorrected:
		s.Stats.CorrectedFlits++
		s.Stats.CorrectedSymbols += uint64(res.Corrected)
	}

	// ModeCXL terminates the link CRC per hop: check on ingress, drop on
	// failure (forwarding a flit with a known-bad CRC risks misrouting).
	if s.Mode == ModeCXL && !f.CheckCRC() {
		s.Stats.DroppedCRC++
		return false
	}

	// Internal fault point: datapath/buffer corruption inside the switch.
	// A deferred seal is materialized before the image mutates, so the
	// corruption lands on the byte-exact sealed image.
	corrupted := false
	if s.InternalHook != nil {
		f.Materialize(s.fec)
		f.Taint()
		if s.InternalHook(f) {
			corrupted = true
		}
	}
	if s.InternalBitFlipProb > 0 && s.rng != nil && s.rng.Float64() < s.InternalBitFlipProb {
		bit := s.rng.Intn((flit.HeaderSize + flit.PayloadSize) * 8)
		f.Materialize(s.fec)
		f.Raw[bit/8] ^= 1 << (7 - bit%8)
		f.Taint()
		corrupted = true
	}
	if corrupted {
		s.Stats.InternalCorruptions++
	}

	// Egress: ModeCXL regenerates the CRC — blessing any internal
	// corruption. ModeRXL leaves the end-to-end CRC untouched.
	if s.Mode == ModeCXL {
		f.RecomputeCRC()
	}
	f.ReencodeFEC(s.fec)
	return true
}
