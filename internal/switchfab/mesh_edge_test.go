package switchfab

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
)

func TestMeshWiresCount(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 3, 2, DefaultMeshConfig(ModeRXL))
	// Inter-router: horizontal 2*2 per row * 2 rows = 8; vertical 2*3 = 6.
	// Node ingress: 6. Total 20.
	if got := len(m.Wires()); got != 20 {
		t.Fatalf("wires = %d, want 20", got)
	}
}

func TestInterRouterWireDirections(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 3, 3, DefaultMeshConfig(ModeRXL))
	// All four directions from the center must exist and be distinct.
	seen := map[*link.Wire]bool{}
	for _, to := range [][2]int{{2, 1}, {0, 1}, {1, 2}, {1, 0}} {
		w := m.InterRouterWire(1, 1, to[0], to[1])
		if w == nil || seen[w] {
			t.Fatalf("direction to %v missing or duplicated", to)
		}
		seen[w] = true
	}
}

func TestInterRouterWireNonAdjacentPanics(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 3, 3, DefaultMeshConfig(ModeRXL))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.InterRouterWire(0, 0, 2, 0)
}

func TestAttachNodeNilPanics(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 2, DefaultMeshConfig(ModeRXL))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.AttachNode(0, 0, nil)
}

// TestMeshRouteCorruptionDropped: a corrupted destination tag pointing
// outside the mesh is dropped with DroppedNoRoute — the misrouting hazard
// the paper cites for forwarding erroneous flits.
func TestMeshRouteCorruptionDropped(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 2, DefaultMeshConfig(ModeRXL))
	in := m.AttachNode(0, 0, func(*flit.Flit) {})

	f := &flit.Flit{}
	f.Payload()[flit.RouteOffset] = 200 // outside the 4-node mesh
	f.SealRXL(0, flit.NewFEC())
	in.Send(f)
	eng.Run()

	if m.TotalStats().DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", m.TotalStats().DroppedNoRoute)
	}
}

// TestMeshUndeliverableLocal: a flit for a node that never attached is
// forwarded into the void without crashing.
func TestMeshUndeliverableLocal(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 2, DefaultMeshConfig(ModeRXL))
	in := m.AttachNode(0, 0, func(*flit.Flit) {})

	f := &flit.Flit{}
	f.Payload()[flit.RouteOffset] = m.NodeID(1, 1) // valid but unattached
	f.SealRXL(0, flit.NewFEC())
	in.Send(f)
	eng.Run() // must terminate without panic
}

// TestMeshInternalCorruptionRXLDetected: datapath corruption inside a
// mesh router is caught by the end-to-end ISN check, as in the scale-out
// case (Section 6.3 extended to NoC).
func TestMeshInternalCorruptionRXLDetected(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 3, 1, DefaultMeshConfig(ModeRXL))
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	b := NewMeshNode(m, 2, 0, link.DefaultConfig(link.ProtocolRXL))
	tx := a.PeerTo(b.ID)
	rx := b.PeerTo(a.ID)

	var payloads [][]byte
	rx.Deliver = func(p []byte) { payloads = append(payloads, append([]byte(nil), p...)) }

	fired := false
	m.Routers[1][0].InternalHook = func(f *flit.Flit) bool {
		if !fired && f.Header().Type == flit.TypeData {
			fired = true
			f.Payload()[5] ^= 0xAA
			return true
		}
		return false
	}

	tx.Submit(tagged(0))
	eng.Run()

	if !fired {
		t.Fatal("internal corruption never injected")
	}
	if len(payloads) != 1 {
		t.Fatalf("delivered %d payloads", len(payloads))
	}
	if payloads[0][5] != 0 {
		t.Fatal("RXL delivered corrupted data through the mesh")
	}
	if rx.Stats.CrcErrors == 0 {
		t.Fatal("ISN never flagged the router-internal corruption")
	}
}

func TestSeedInternalFaultsOnMeshRouter(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 1, DefaultMeshConfig(ModeRXL))
	m.Routers[0][0].SeedInternalFaults(0.5, nil) // nil rng: must stay inert
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	b := NewMeshNode(m, 1, 0, link.DefaultConfig(link.ProtocolRXL))
	tx := a.PeerTo(b.ID)
	delivered := 0
	b.PeerTo(a.ID).Deliver = func([]byte) { delivered++ }
	tx.Submit(tagged(1))
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	if m.Routers[0][0].Stats.InternalCorruptions != 0 {
		t.Fatal("nil-RNG fault injection corrupted a flit")
	}
}
