package switchfab

import (
	"encoding/binary"
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
)

func tagged(tag uint64) []byte {
	p := make([]byte, 16)
	binary.BigEndian.PutUint64(p, tag)
	return p
}

func collectTags(dst *[]uint64) func([]byte) {
	return func(p []byte) { *dst = append(*dst, binary.BigEndian.Uint64(p)) }
}

func wantInOrder(t *testing.T, got []uint64, n uint64) {
	t.Helper()
	if uint64(len(got)) != n {
		t.Fatalf("delivered %d payloads, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
}

func TestChainCleanDelivery(t *testing.T) {
	for _, proto := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		for _, levels := range []int{0, 1, 2, 4} {
			t.Run(proto.String(), func(t *testing.T) {
				eng := sim.NewEngine()
				c := NewChain(eng, DefaultChainConfig(proto, levels))
				var got []uint64
				c.B.Deliver = collectTags(&got)
				const n = 200
				for i := uint64(0); i < n; i++ {
					c.A.Submit(tagged(i))
				}
				eng.Run()
				wantInOrder(t, got, n)
				if levels > 0 {
					st := c.TotalSwitchStats()
					if st.Forwarded == 0 {
						t.Error("switches forwarded nothing")
					}
					if st.DroppedUncorrectable+st.DroppedCRC != 0 {
						t.Error("clean chain dropped flits")
					}
				}
			})
		}
	}
}

func TestChainBidirectional(t *testing.T) {
	eng := sim.NewEngine()
	c := NewChain(eng, DefaultChainConfig(link.ProtocolRXL, 2))
	var gotB, gotA []uint64
	c.B.Deliver = collectTags(&gotB)
	c.A.Deliver = collectTags(&gotA)
	const n = 200
	for i := uint64(0); i < n; i++ {
		c.A.Submit(tagged(i))
		c.B.Submit(tagged(i))
	}
	eng.Run()
	wantInOrder(t, gotB, n)
	wantInOrder(t, gotA, n)
}

// TestSwitchDropsUncorrectable: a flit corrupted beyond FEC repair on the
// first hop is silently discarded by the switch and never reaches the
// endpoint — the failure mode everything else builds on.
func TestSwitchDropsUncorrectable(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultChainConfig(link.ProtocolRXL, 1)
	c := NewChain(eng, cfg)
	var got []uint64
	c.B.Deliver = collectTags(&got)

	seen := 0
	c.Fwd[0].FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			if seen == 3 {
				// Two symbol errors in one interleave way: uncorrectable.
				f.Raw[30] ^= 0xFF
				f.Raw[33] ^= 0xFF
			}
		}
		return false
	}
	const n = 20
	for i := uint64(0); i < n; i++ {
		c.A.Submit(tagged(i))
	}
	eng.Run()
	wantInOrder(t, got, n) // RXL recovers via ISN
	if c.Switches[0].Stats.DroppedUncorrectable != 1 {
		t.Errorf("DroppedUncorrectable = %d, want 1", c.Switches[0].Stats.DroppedUncorrectable)
	}
	if c.B.Stats.CrcErrors == 0 {
		t.Error("endpoint never saw the ISN mismatch")
	}
}

// TestSwitchDropCXLPiggybackMisorders reproduces the paper's core failure
// (Section 7.1.2) across a real switch: a drop at the first link followed
// by an AckNum-carrying flit yields out-of-order delivery under CXL.
func TestSwitchDropCXLPiggybackMisorders(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultChainConfig(link.ProtocolCXL, 1)
	cfg.LinkCfg.CoalesceCount = 1
	c := NewChain(eng, cfg)
	var got []uint64
	c.B.Deliver = collectTags(&got)

	// Corrupt data flit #2 uncorrectably on the first hop; the switch
	// drops it silently.
	seen := 0
	c.Fwd[0].FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			if seen == 2 {
				f.Raw[30] ^= 0xFF
				f.Raw[33] ^= 0xFF
			}
		}
		return false
	}

	// Reverse payload gives A an ack to piggyback; timing as in Fig. 4.
	c.B.Submit(tagged(100))
	c.A.Submit(tagged(0))
	c.A.Submit(tagged(1))
	eng.Schedule(30*sim.Nanosecond, func() { c.A.Submit(tagged(2)) })
	eng.Schedule(34*sim.Nanosecond, func() { c.A.Submit(tagged(3)) })
	eng.Run()

	if c.Switches[0].Stats.DroppedUncorrectable == 0 {
		t.Fatal("switch never dropped the flit")
	}
	if c.B.Stats.UnverifiedDelivered == 0 {
		t.Fatal("scenario did not exercise the piggyback blind spot")
	}
	// Misordering: tag 2 delivered before tag 1.
	pos := map[uint64]int{}
	for i, v := range got {
		if _, dup := pos[v]; !dup {
			pos[v] = i
		}
	}
	if !(pos[2] < pos[1]) {
		t.Fatalf("expected out-of-order delivery, got %v", got)
	}
}

// TestInternalCorruptionCXLUndetected demonstrates Section 6.3: corruption
// inside a CXL switch is blessed by the regenerated link CRC and reaches
// the application undetected.
func TestInternalCorruptionCXLUndetected(t *testing.T) {
	eng := sim.NewEngine()
	c := NewChain(eng, DefaultChainConfig(link.ProtocolCXL, 1))
	var payloads [][]byte
	c.B.Deliver = func(p []byte) { payloads = append(payloads, append([]byte(nil), p...)) }

	fired := false
	c.Switches[0].InternalHook = func(f *flit.Flit) bool {
		if !fired && f.Header().Type == flit.TypeData {
			fired = true
			f.Payload()[5] ^= 0xAA // datapath corruption inside the switch
			return true
		}
		return false
	}
	c.A.Submit(tagged(0))
	eng.Run()

	if !fired {
		t.Fatal("internal corruption never injected")
	}
	if len(payloads) != 1 {
		t.Fatalf("delivered %d payloads", len(payloads))
	}
	if payloads[0][5] != 0xAA^0 {
		t.Fatalf("expected corrupted byte to reach the application, got %#x", payloads[0][5])
	}
	if c.B.Stats.CrcErrors != 0 {
		t.Error("CXL endpoint should NOT detect switch-internal corruption")
	}
}

// TestInternalCorruptionRXLDetected: under RXL the end-to-end ECRC catches
// the same internal corruption and the retry delivers clean data.
func TestInternalCorruptionRXLDetected(t *testing.T) {
	eng := sim.NewEngine()
	c := NewChain(eng, DefaultChainConfig(link.ProtocolRXL, 1))
	var payloads [][]byte
	c.B.Deliver = func(p []byte) { payloads = append(payloads, append([]byte(nil), p...)) }

	fired := false
	c.Switches[0].InternalHook = func(f *flit.Flit) bool {
		if !fired && f.Header().Type == flit.TypeData {
			fired = true
			f.Payload()[5] ^= 0xAA
			return true
		}
		return false
	}
	c.A.Submit(tagged(0))
	eng.Run()

	if !fired {
		t.Fatal("internal corruption never injected")
	}
	if len(payloads) != 1 {
		t.Fatalf("delivered %d payloads", len(payloads))
	}
	if payloads[0][5] != 0 {
		t.Fatal("RXL delivered corrupted data")
	}
	if c.B.Stats.CrcErrors == 0 {
		t.Error("RXL endpoint never flagged the corruption")
	}
	if c.A.Stats.Retransmissions == 0 {
		t.Error("no retry happened")
	}
}

func TestChainUnderBERRXLExactlyOnce(t *testing.T) {
	eng := sim.NewEngine()
	c := NewChain(eng, DefaultChainConfig(link.ProtocolRXL, 2))
	rng := phy.NewRNG(99)
	for _, w := range c.AllWires() {
		w.Channel = phy.NewChannel(1e-5, 0.4, rng.Split())
	}
	var got []uint64
	c.B.Deliver = collectTags(&got)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		c.A.Submit(tagged(i))
	}
	eng.Run()
	wantInOrder(t, got, n)
	st := c.TotalSwitchStats()
	if st.DroppedUncorrectable == 0 {
		t.Log("note: no switch drops occurred at this BER/seed")
	}
}

func TestChainUnderBERNoPiggybackExactlyOnce(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultChainConfig(link.ProtocolCXLNoPiggyback, 1)
	c := NewChain(eng, cfg)
	rng := phy.NewRNG(5)
	for _, w := range c.AllWires() {
		w.Channel = phy.NewChannel(1e-5, 0.4, rng.Split())
	}
	var got []uint64
	c.B.Deliver = collectTags(&got)
	const n = 3000
	for i := uint64(0); i < n; i++ {
		c.A.Submit(tagged(i))
	}
	eng.Run()
	wantInOrder(t, got, n)
}

func TestCrossbarStar(t *testing.T) {
	// Host <-> crossbar <-> 3 devices, RXL. Each device exchanges tagged
	// streams with the host through its own link-layer peer pair.
	eng := sim.NewEngine()
	x := NewCrossbar("X", eng, ModeRXL, 5*sim.Nanosecond)

	const ndev = 3
	const hostTag = 0

	mkCfg := func(src, dst byte) link.Config {
		c := link.DefaultConfig(link.ProtocolRXL)
		c.StampRoute = true
		c.SrcTag = src
		c.RouteTag = dst
		return c
	}

	// Host side: one peer per device, demuxed by source tag.
	hostPeers := make(map[byte]*link.Peer)
	devPeers := make(map[byte]*link.Peer)
	gotAtHost := make(map[byte][]uint64)
	gotAtDev := make(map[byte][]uint64)

	// Host->crossbar wire is shared by all host peers (one physical link).
	hostToX := link.NewWire(eng, sim.FlitTime, 10*sim.Nanosecond, x.Ingress())
	// Crossbar->host wire demuxes by source tag.
	xToHost := link.NewWire(eng, sim.FlitTime, 10*sim.Nanosecond, func(f *flit.Flit) {
		src := f.Payload()[flit.SrcRouteOffset]
		if p, ok := hostPeers[src]; ok {
			p.Receive(f)
		}
	})
	x.SetRoute(hostTag, xToHost)

	for d := byte(1); d <= ndev; d++ {
		d := d
		hp := link.NewPeer("host-"+string('0'+d), eng, mkCfg(hostTag, d))
		hp.Attach(hostToX)
		hp.Deliver = func(p []byte) {
			gotAtHost[d] = append(gotAtHost[d], binary.BigEndian.Uint64(p))
		}
		hostPeers[d] = hp

		dp := link.NewPeer("dev-"+string('0'+d), eng, mkCfg(d, hostTag))
		xToDev := link.NewWire(eng, sim.FlitTime, 10*sim.Nanosecond, dp.Receive)
		devToX := link.NewWire(eng, sim.FlitTime, 10*sim.Nanosecond, x.Ingress())
		dp.Attach(devToX)
		dp.Deliver = func(p []byte) {
			gotAtDev[d] = append(gotAtDev[d], binary.BigEndian.Uint64(p))
		}
		x.SetRoute(d, xToDev)
		devPeers[d] = dp
	}

	const n = 100
	for i := uint64(0); i < n; i++ {
		for d := byte(1); d <= ndev; d++ {
			hostPeers[d].Submit(tagged(i))
			devPeers[d].Submit(tagged(i))
		}
	}
	eng.Run()

	for d := byte(1); d <= ndev; d++ {
		wantInOrder(t, gotAtDev[d], n)
		wantInOrder(t, gotAtHost[d], n)
	}
	if x.Stats.DroppedNoRoute != 0 {
		t.Errorf("crossbar dropped %d flits for missing routes", x.Stats.DroppedNoRoute)
	}
}

func TestCrossbarDropsUnknownDest(t *testing.T) {
	eng := sim.NewEngine()
	x := NewCrossbar("X", eng, ModeRXL, 0)
	in := link.NewWire(eng, sim.FlitTime, 0, x.Ingress())
	f := &flit.Flit{}
	f.Payload()[flit.RouteOffset] = 42 // no such route
	f.SealRXL(0, flit.NewFEC())
	in.Send(f)
	eng.Run()
	if x.Stats.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d", x.Stats.DroppedNoRoute)
	}
}

func TestNegativeLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewChain(sim.NewEngine(), ChainConfig{Levels: -1, LinkCfg: link.DefaultConfig(link.ProtocolRXL)})
}

func TestModeString(t *testing.T) {
	if ModeCXL.String() != "CXL" || ModeRXL.String() != "RXL" {
		t.Error("mode strings wrong")
	}
}

func BenchmarkChainThroughput2Level(b *testing.B) {
	eng := sim.NewEngine()
	c := NewChain(eng, DefaultChainConfig(link.ProtocolRXL, 2))
	delivered := 0
	c.B.Deliver = func([]byte) { delivered++ }
	payload := make([]byte, flit.PayloadSize)
	b.SetBytes(flit.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.A.Submit(payload)
		if c.A.Queued() > 256 {
			eng.Run()
		}
	}
	eng.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
