package switchfab

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
)

func TestMeshNodeID(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 3, DefaultMeshConfig(ModeRXL))
	if m.NodeID(0, 0) != 0 || m.NodeID(3, 0) != 3 || m.NodeID(0, 1) != 4 || m.NodeID(3, 2) != 11 {
		t.Fatal("node IDs wrong")
	}
	for id := byte(0); id < 12; id++ {
		x, y, ok := m.nodeXY(id)
		if !ok || m.NodeID(x, y) != id {
			t.Fatalf("nodeXY(%d) = (%d,%d,%v)", id, x, y, ok)
		}
	}
	if _, _, ok := m.nodeXY(12); ok {
		t.Fatal("out-of-mesh tag accepted")
	}
}

func TestMeshGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMesh(sim.NewEngine(), 17, 16, DefaultMeshConfig(ModeRXL)) // 272 nodes > 256
}

func TestMeshNodeOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 2, DefaultMeshConfig(ModeRXL))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.NodeID(2, 0)
}

// meshFlow sets up a unidirectional tagged stream between two nodes and
// returns the delivery slice.
func meshFlow(m *Mesh, from, to *MeshNode) (*link.Peer, *[]uint64) {
	tx := from.PeerTo(to.ID)
	rx := to.PeerTo(from.ID)
	var got []uint64
	rx.Deliver = func(p []byte) { got = append(got, binary.BigEndian.Uint64(p)) }
	_ = rx
	return tx, &got
}

// TestMeshCornerToCorner routes a stream across the full diagonal of a
// 4x4 mesh (6 hops) and checks exactly-once in-order delivery.
func TestMeshCornerToCorner(t *testing.T) {
	for _, mode := range []Mode{ModeCXL, ModeRXL} {
		proto := link.ProtocolCXLNoPiggyback
		if mode == ModeRXL {
			proto = link.ProtocolRXL
		}
		t.Run(mode.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			m := NewMesh(eng, 4, 4, DefaultMeshConfig(mode))
			a := NewMeshNode(m, 0, 0, link.DefaultConfig(proto))
			b := NewMeshNode(m, 3, 3, link.DefaultConfig(proto))
			tx, got := meshFlow(m, a, b)

			const n = 300
			for i := uint64(0); i < n; i++ {
				tx.Submit(tagged(i))
			}
			eng.Run()

			if uint64(len(*got)) != n {
				t.Fatalf("delivered %d of %d", len(*got), n)
			}
			for i, v := range *got {
				if v != uint64(i) {
					t.Fatalf("delivery %d has tag %d", i, v)
				}
			}
			st := m.TotalStats()
			if st.DroppedNoRoute != 0 {
				t.Errorf("%d flits misrouted", st.DroppedNoRoute)
			}
			// The diagonal crosses 7 routers (4 east + 3 south hops).
			if st.FlitsIn == 0 {
				t.Error("mesh never saw traffic")
			}
		})
	}
}

// TestMeshAllToAllRXL drives flows between every ordered pair of a 3x3
// mesh simultaneously.
func TestMeshAllToAllRXL(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 3, 3, DefaultMeshConfig(ModeRXL))

	nodes := make([]*MeshNode, 0, 9)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			nodes = append(nodes, NewMeshNode(m, x, y, link.DefaultConfig(link.ProtocolRXL)))
		}
	}

	type flow struct {
		tx  *link.Peer
		got *[]uint64
	}
	var flows []flow
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			tx, got := meshFlow(m, a, b)
			flows = append(flows, flow{tx, got})
		}
	}

	const n = 25
	for i := uint64(0); i < n; i++ {
		for _, f := range flows {
			f.tx.Submit(tagged(i))
		}
	}
	eng.Run()

	for fi, f := range flows {
		if uint64(len(*f.got)) != n {
			t.Fatalf("flow %d delivered %d of %d", fi, len(*f.got), n)
		}
		for i, v := range *f.got {
			if v != uint64(i) {
				t.Fatalf("flow %d delivery %d has tag %d", fi, i, v)
			}
		}
	}
}

// TestMeshRXLUnderBER: a multi-hop NoC path under live error injection
// still delivers exactly-once in order — the paper's future-work claim
// that ISN extends to NoC.
func TestMeshRXLUnderBER(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultMeshConfig(ModeRXL)
	cfg.BER = 1e-5
	cfg.BurstProb = 0.4
	cfg.Seed = 31
	m := NewMesh(eng, 4, 4, cfg)
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	b := NewMeshNode(m, 3, 3, link.DefaultConfig(link.ProtocolRXL))
	tx, got := meshFlow(m, a, b)

	const n = 2000
	for i := uint64(0); i < n; i++ {
		tx.Submit(tagged(i))
	}
	eng.Run()

	if uint64(len(*got)) != n {
		t.Fatalf("delivered %d of %d", len(*got), n)
	}
	for i, v := range *got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
	st := m.TotalStats()
	t.Logf("mesh under BER: corrected=%d drops=%d", st.CorrectedFlits, st.DroppedUncorrectable)
}

// TestMeshMidRouteDropRXLRecovers: an uncorrectable corruption at a
// middle router is silently dropped; the ISN check at the endpoint
// detects and repairs it across 6 hops.
func TestMeshMidRouteDropRXLRecovers(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, DefaultMeshConfig(ModeRXL))
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	b := NewMeshNode(m, 3, 3, link.DefaultConfig(link.ProtocolRXL))
	tx, got := meshFlow(m, a, b)

	// Corrupt one data flit beyond FEC repair on the hop into router
	// (2,0); that router's ingress decode flags it uncorrectable and
	// silently drops it.
	seen := 0
	m.InterRouterWire(1, 0, 2, 0).FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			if seen == 4 {
				f.Raw[30] ^= 0xFF
				f.Raw[33] ^= 0xFF
			}
		}
		return false
	}

	const n = 50
	for i := uint64(0); i < n; i++ {
		tx.Submit(tagged(i))
	}
	eng.Run()

	if uint64(len(*got)) != n {
		t.Fatalf("delivered %d of %d", len(*got), n)
	}
	for i, v := range *got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
	if m.Routers[2][0].Stats.DroppedUncorrectable != 1 {
		t.Errorf("center router drops = %d, want 1", m.Routers[2][0].Stats.DroppedUncorrectable)
	}
}

func BenchmarkMeshDiagonalRXL(b *testing.B) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 4, DefaultMeshConfig(ModeRXL))
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	dst := NewMeshNode(m, 3, 3, link.DefaultConfig(link.ProtocolRXL))
	tx := a.PeerTo(dst.ID)
	delivered := 0
	dst.PeerTo(a.ID).Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 16)
	b.SetBytes(flit.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Submit(payload)
		if tx.Queued() > 256 {
			eng.Run()
		}
	}
	eng.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

func ExampleMesh() {
	eng := sim.NewEngine()
	m := NewMesh(eng, 2, 2, DefaultMeshConfig(ModeRXL))
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	b := NewMeshNode(m, 1, 1, link.DefaultConfig(link.ProtocolRXL))
	tx := a.PeerTo(b.ID)
	b.PeerTo(a.ID).Deliver = func(p []byte) {
		fmt.Println("tag", binary.BigEndian.Uint64(p))
	}
	tx.Submit(tagged(7))
	eng.Run()
	// Output: tag 7
}
