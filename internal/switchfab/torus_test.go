package switchfab

import (
	"testing"

	"repro/internal/link"
	"repro/internal/sim"
)

func torusConfig(mode Mode) MeshConfig {
	cfg := DefaultMeshConfig(mode)
	cfg.Wrap = true
	return cfg
}

// TestTorusHops pins the minimal-ring hop arithmetic: wraparound halves
// the worst-case distance, exact ties break toward east/south (+1), and
// Wrap=false reproduces plain Manhattan distances.
func TestTorusHops(t *testing.T) {
	eng := sim.NewEngine()
	tor := NewMesh(eng, 4, 4, torusConfig(ModeRXL))
	mesh := NewMesh(sim.NewEngine(), 4, 4, DefaultMeshConfig(ModeRXL))

	cases := []struct {
		sx, sy, dx, dy int
		torus, mesh    int
	}{
		{0, 0, 3, 3, 3, 7}, // corner diagonal: 1 wrap hop per axis
		{0, 0, 1, 0, 2, 2}, // direct neighbor unchanged
		{0, 0, 2, 0, 3, 3}, // exact tie (dist 2 both ways): same count
		{1, 2, 1, 2, 1, 1}, // self: injection hop only
		{3, 0, 0, 0, 2, 4}, // row wrap
		{0, 3, 0, 0, 2, 4}, // column wrap
	}
	for _, c := range cases {
		if got := tor.HopsBetween(c.sx, c.sy, c.dx, c.dy); got != c.torus {
			t.Errorf("torus (%d,%d)->(%d,%d) hops = %d, want %d", c.sx, c.sy, c.dx, c.dy, got, c.torus)
		}
		if got := mesh.HopsBetween(c.sx, c.sy, c.dx, c.dy); got != c.mesh {
			t.Errorf("mesh (%d,%d)->(%d,%d) hops = %d, want %d", c.sx, c.sy, c.dx, c.dy, got, c.mesh)
		}
	}

	// Tie-break direction: distance 2 on a 4-ring routes east/south.
	if s := tor.dimStep(0, 2, 4); s != 1 {
		t.Errorf("tie-break step = %d, want +1 (east/south)", s)
	}
	if s := tor.dimStep(3, 1, 4); s != 1 {
		t.Errorf("wrap-forward step = %d, want +1", s)
	}
	if s := tor.dimStep(0, 3, 4); s != -1 {
		t.Errorf("wrap-backward step = %d, want -1", s)
	}
}

// TestTorusCornerToCorner routes the full diagonal of a 4x4 torus — two
// wrap hops instead of six interior ones — and checks exactly-once
// in-order delivery in both modes.
func TestTorusCornerToCorner(t *testing.T) {
	for _, mode := range []Mode{ModeCXL, ModeRXL} {
		proto := link.ProtocolCXLNoPiggyback
		if mode == ModeRXL {
			proto = link.ProtocolRXL
		}
		t.Run(mode.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			m := NewMesh(eng, 4, 4, torusConfig(mode))
			a := NewMeshNode(m, 0, 0, link.DefaultConfig(proto))
			b := NewMeshNode(m, 3, 3, link.DefaultConfig(proto))
			tx, got := meshFlow(m, a, b)

			const n = 300
			for i := uint64(0); i < n; i++ {
				tx.Submit(tagged(i))
			}
			eng.Run()

			if uint64(len(*got)) != n {
				t.Fatalf("delivered %d of %d", len(*got), n)
			}
			for i, v := range *got {
				if v != uint64(i) {
					t.Fatalf("delivery %d has tag %d", i, v)
				}
			}
			st := m.TotalStats()
			if st.DroppedNoRoute != 0 {
				t.Errorf("%d flits misrouted", st.DroppedNoRoute)
			}
			// The minimal route crosses only the two corner-adjacent
			// routers: (0,0) west-wraps to (3,0), then north-wraps to
			// (3,3). Interior routers never forward.
			if fwd := m.Routers[1][1].Stats.Forwarded; fwd != 0 {
				t.Errorf("interior router forwarded %d flits on a wrap route", fwd)
			}
			if fwd := m.Routers[3][0].Stats.Forwarded; fwd == 0 && m.Routers[0][3].Stats.Forwarded == 0 {
				t.Error("no wrap-corner router forwarded traffic")
			}
		})
	}
}

// TestTorusAllToAllRXL drives flows between every ordered pair of a 3x3
// torus simultaneously — every wrap wire carries traffic.
func TestTorusAllToAllRXL(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 3, 3, torusConfig(ModeRXL))

	nodes := make([]*MeshNode, 0, 9)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			nodes = append(nodes, NewMeshNode(m, x, y, link.DefaultConfig(link.ProtocolRXL)))
		}
	}

	type flow struct {
		tx  *link.Peer
		got *[]uint64
	}
	var flows []flow
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			tx, got := meshFlow(m, a, b)
			flows = append(flows, flow{tx, got})
		}
	}

	const n = 25
	for i := uint64(0); i < n; i++ {
		for _, f := range flows {
			f.tx.Submit(tagged(i))
		}
	}
	eng.Run()

	for fi, f := range flows {
		if uint64(len(*f.got)) != n {
			t.Fatalf("flow %d delivered %d of %d", fi, len(*f.got), n)
		}
		for i, v := range *f.got {
			if v != uint64(i) {
				t.Fatalf("flow %d delivery %d has tag %d", fi, i, v)
			}
		}
	}
}

// TestTorusRXLUnderBER: wrap routes under live error injection still
// deliver exactly-once in order.
func TestTorusRXLUnderBER(t *testing.T) {
	eng := sim.NewEngine()
	cfg := torusConfig(ModeRXL)
	cfg.BER = 1e-5
	cfg.BurstProb = 0.4
	cfg.Seed = 31
	m := NewMesh(eng, 4, 4, cfg)
	a := NewMeshNode(m, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	b := NewMeshNode(m, 3, 3, link.DefaultConfig(link.ProtocolRXL))
	tx, got := meshFlow(m, a, b)

	const n = 2000
	for i := uint64(0); i < n; i++ {
		tx.Submit(tagged(i))
	}
	eng.Run()

	if uint64(len(*got)) != n {
		t.Fatalf("delivered %d of %d", len(*got), n)
	}
	for i, v := range *got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
}

// TestTorusInterRouterWire: wrap edges are addressable for targeted fault
// injection, non-adjacent pairs still panic, and plain meshes reject wrap
// pairs.
func TestTorusInterRouterWire(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, 4, 3, torusConfig(ModeRXL))
	for _, c := range [][4]int{
		{3, 1, 0, 1}, // east wrap
		{0, 1, 3, 1}, // west wrap
		{1, 2, 1, 0}, // south wrap
		{1, 0, 1, 2}, // north wrap
		{1, 1, 2, 1}, // interior edge still works
	} {
		if m.InterRouterWire(c[0], c[1], c[2], c[3]) == nil {
			t.Errorf("wire (%d,%d)->(%d,%d) missing", c[0], c[1], c[2], c[3])
		}
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	// Two wrap hops away is not adjacent.
	mustPanic("torus non-adjacent", func() { m.InterRouterWire(0, 0, 2, 0) })
	// A plain mesh has no wrap wires.
	plain := NewMesh(sim.NewEngine(), 4, 3, DefaultMeshConfig(ModeRXL))
	mustPanic("mesh wrap pair", func() { plain.InterRouterWire(3, 1, 0, 1) })
	_ = eng
}

// TestSetPathBERScale: scaling path schedules retunes existing channels
// and steers later-created ones; scale 1 restores the configured rate.
func TestSetPathBERScale(t *testing.T) {
	eng := sim.NewEngine()
	cfg := torusConfig(ModeRXL)
	cfg.BER = 1e-6
	cfg.Seed = 7
	m := NewMesh(eng, 2, 2, cfg)

	base, factor := float64(1e-6), float64(100)
	scaled := base * factor // the exact float64 product the mesh computes
	existing := m.pathSched(0, 3)
	m.SetPathBERScale(100)
	if got := existing.Channel().BER; got != scaled {
		t.Errorf("existing schedule BER = %g, want %g", got, scaled)
	}
	created := m.pathSched(3, 0)
	if got := created.Channel().BER; got != scaled {
		t.Errorf("new schedule BER = %g, want %g", got, scaled)
	}
	m.SetPathBERScale(1)
	if got := existing.Channel().BER; got != 1e-6 {
		t.Errorf("restored BER = %g, want 1e-6", got)
	}

	// Clean meshes have no schedules to scale; the call is a no-op.
	clean := NewMesh(sim.NewEngine(), 2, 2, torusConfig(ModeRXL))
	clean.SetPathBERScale(10)

	defer func() {
		if recover() == nil {
			t.Error("non-positive scale: no panic")
		}
	}()
	m.SetPathBERScale(0)
}
