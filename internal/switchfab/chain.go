package switchfab

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
)

// Chain is the paper's multi-level switching topology (Section 7.1.4): two
// endpoints connected through L switches in series, giving L+1 links per
// direction. Level 0 is a direct connection.
//
//	A ═w0═ S1 ═w1═ S2 ═ ... ═ SL ═wL═ B
//
// All wires are exposed so experiments can attach error channels and fault
// hooks per hop.
type Chain struct {
	A, B *link.Peer
	// Fwd[i] is the i-th wire on the A->B path; Bwd[i] the i-th on B->A
	// (Bwd[0] leaves B). len == levels+1.
	Fwd, Bwd []*link.Wire
	// Switches holds the L switching elements, shared by both directions.
	Switches []*Switch
}

// ChainConfig parameterizes chain construction.
type ChainConfig struct {
	Levels        int // number of switches (0 = direct connection)
	LinkCfg       link.Config
	Serialization sim.Time // per-flit serialization delay per hop
	Propagation   sim.Time // per-hop propagation delay
	SwitchLatency sim.Time // per-switch processing delay
}

// DefaultChainConfig gives the paper's timing: 2ns flits and a per-hop
// budget sized so the go-back-N round trip lands near the 100ns retry
// latency assumed in Section 7.2.
func DefaultChainConfig(proto link.Protocol, levels int) ChainConfig {
	return ChainConfig{
		Levels:        levels,
		LinkCfg:       link.DefaultConfig(proto),
		Serialization: sim.FlitTime,
		Propagation:   10 * sim.Nanosecond,
		SwitchLatency: 5 * sim.Nanosecond,
	}
}

// switchMode maps the link protocol to the switch stack variant: RXL
// switches pass the CRC through; everything else terminates it per hop.
func switchMode(p link.Protocol) Mode {
	if p == link.ProtocolRXL {
		return ModeRXL
	}
	return ModeCXL
}

// NewChain builds the topology and returns it with endpoints attached and
// ready for traffic.
func NewChain(eng *sim.Engine, cfg ChainConfig) *Chain {
	if cfg.Levels < 0 {
		panic("switchfab: negative switch levels")
	}
	c := &Chain{}
	c.A = link.NewPeer("A", eng, cfg.LinkCfg)
	c.B = link.NewPeer("B", eng, cfg.LinkCfg)
	mode := switchMode(cfg.LinkCfg.Protocol)

	for i := 0; i < cfg.Levels; i++ {
		c.Switches = append(c.Switches,
			NewSwitch(fmt.Sprintf("S%d", i+1), eng, mode, cfg.SwitchLatency, nil))
	}

	// Build each direction from the far end backwards so every wire knows
	// its deliver target at construction.
	c.Fwd = buildPath(eng, cfg, c.Switches, c.B, false)
	c.Bwd = buildPath(eng, cfg, c.Switches, c.A, true)
	c.A.Attach(c.Fwd[0])
	c.B.Attach(c.Bwd[0])
	return c
}

// buildPath creates the levels+1 wires of one direction. For the backward
// direction the switch order is reversed (flits from B hit SL first).
func buildPath(eng *sim.Engine, cfg ChainConfig, switches []*Switch, dst *link.Peer, reverse bool) []*link.Wire {
	n := cfg.Levels + 1
	wires := make([]*link.Wire, n)
	// Wire n-1 delivers to the destination endpoint.
	deliver := dst.Receive
	for i := n - 1; i >= 0; i-- {
		wires[i] = link.NewWire(eng, cfg.Serialization, cfg.Propagation, deliver)
		if i > 0 {
			sw := switches[i-1]
			if reverse {
				sw = switches[len(switches)-i]
			}
			deliver = sw.Pipeline(wires[i])
		}
	}
	return wires
}

// AllWires returns every wire in both directions, for bulk channel
// attachment.
func (c *Chain) AllWires() []*link.Wire {
	out := make([]*link.Wire, 0, len(c.Fwd)+len(c.Bwd))
	out = append(out, c.Fwd...)
	return append(out, c.Bwd...)
}

// TotalSwitchStats sums the stats across all switches.
func (c *Chain) TotalSwitchStats() Stats {
	var t Stats
	for _, s := range c.Switches {
		t.FlitsIn += s.Stats.FlitsIn
		t.Forwarded += s.Stats.Forwarded
		t.DeliveredLocal += s.Stats.DeliveredLocal
		t.DroppedUncorrectable += s.Stats.DroppedUncorrectable
		t.DroppedCRC += s.Stats.DroppedCRC
		t.DroppedNoRoute += s.Stats.DroppedNoRoute
		t.CorrectedFlits += s.Stats.CorrectedFlits
		t.CorrectedSymbols += s.Stats.CorrectedSymbols
		t.InternalCorruptions += s.Stats.InternalCorruptions
	}
	return t
}

// Crossbar is a multi-port switch routing flits by the destination tag at
// flit.RouteOffset in the payload. It shares the Switch ingress/egress pipeline
// (FEC termination, per-mode CRC handling, internal fault injection).
type Crossbar struct {
	*Switch
	routes map[byte]*link.Wire
}

// NewCrossbar constructs a crossbar switch.
func NewCrossbar(name string, eng *sim.Engine, mode Mode, latency sim.Time) *Crossbar {
	return &Crossbar{
		Switch: NewSwitch(name, eng, mode, latency, nil),
		routes: make(map[byte]*link.Wire),
	}
}

// SetRoute installs the egress wire for a destination tag.
func (x *Crossbar) SetRoute(dest byte, egress *link.Wire) { x.routes[dest] = egress }

// Ingress returns the deliver function for an ingress wire: process, then
// route by the (possibly corrupted) destination tag. Unknown destinations
// are dropped silently — a misrouted flit simply vanishes, exactly the
// hazard the paper cites for forwarding erroneous flits. The crossbar
// latency is folded into the egress wire claim (Switch.Pipeline has the
// reasoning).
func (x *Crossbar) Ingress() func(*flit.Flit) {
	return func(f *flit.Flit) {
		if !x.process(f) {
			flit.Release(f)
			return
		}
		egress, ok := x.routes[f.Payload()[flit.RouteOffset]]
		if !ok {
			x.Stats.DroppedNoRoute++
			flit.Release(f)
			return
		}
		x.forward(f, egress)
	}
}
