//go:build amd64 && !purego

#include "textflag.h"

// CRC-64/ECMA-182 carry-less-multiply folding (PCLMULQDQ), normal
// (MSB-first) bit order.
//
// The message is a GF(2) polynomial with the first byte's MSB as the
// highest-degree coefficient, so 16-byte blocks are byte-reversed on load
// (PSHUFB) to line the polynomial up big-endian in the XMM register. A
// 128-bit accumulator A (hi·x^64 + lo) folds forward across d bits of
// message via two carry-less multiplies:
//
//	A·x^d ≡ hi ⊗ (x^(d+64) mod P) ⊕ lo ⊗ (x^d mod P)   (mod P)
//
// Each product is ≤126 bits, so the folded value stays in one register and
// the next data block XORs straight in. The main loop keeps four
// independent accumulators over a 64-byte stride (fold distance 512 bits);
// the epilogue folds them together at distance 128 and consumes the
// remaining 16-byte blocks. The final 128→64-bit reduction happens in Go
// (foldReduce: one slicing-by-16 table round over the accumulator bytes),
// keeping the assembly free of Barrett-reduction constants.
//
// Fold constants, x^e mod P for P = x^64 + 0x42F0E1EBA9EA3693 (generated
// by the TestFoldConstants derivation in crc_clmul_test.go):
//
//	x^128 = 0x05F5C3C7EB52FAB6    x^192 = 0x4EB938A7D257740E
//	x^512 = 0x5F6843CA540DF020    x^576 = 0xDDF4B6981205B83F

// PSHUFB control: reverse the 16 bytes of a register.
DATA bswap16<>+0(SB)/8, $0x08090a0b0c0d0e0f
DATA bswap16<>+8(SB)/8, $0x0001020304050607
GLOBL bswap16<>(SB), RODATA|NOPTR, $16

// 128-bit-distance fold pair: low qword x^128, high qword x^192.
DATA k128<>+0(SB)/8, $0x05F5C3C7EB52FAB6
DATA k128<>+8(SB)/8, $0x4EB938A7D257740E
GLOBL k128<>(SB), RODATA|NOPTR, $16

// 512-bit-distance fold pair: low qword x^512, high qword x^576.
DATA k512<>+0(SB)/8, $0x5F6843CA540DF020
DATA k512<>+8(SB)/8, $0xDDF4B6981205B83F
GLOBL k512<>(SB), RODATA|NOPTR, $16

// func clmulBlocks(crc uint64, p *byte, n int) (hi, lo uint64)
//
// Folds n bytes at p (n ≥ 16 and n%16 == 0; the Go wrapper guarantees
// both) into a 128-bit accumulator congruent mod P to the byte stream with
// the running crc state prepended. The caller finishes with foldReduce.
TEXT ·clmulBlocks(SB), NOSPLIT, $0-40
	MOVQ crc+0(FP), AX
	MOVQ p+8(FP), SI
	MOVQ n+16(FP), CX
	MOVOU bswap16<>(SB), X15

	// X5 = crc << 64: the running state joins the highest-degree end of
	// the first block, exactly as the table engines fold it into the
	// first 8 bytes.
	MOVQ AX, X5
	PSLLDQ $8, X5

	CMPQ CX, $64
	JB   small

	// Prime four lanes from the first 64 bytes. Lane 0 holds the
	// highest-degree block and absorbs the running state.
	MOVOU  0(SI), X0
	MOVOU  16(SI), X1
	MOVOU  32(SI), X2
	MOVOU  48(SI), X3
	PSHUFB X15, X0
	PSHUFB X15, X1
	PSHUFB X15, X2
	PSHUFB X15, X3
	PXOR   X5, X0
	ADDQ   $64, SI
	SUBQ   $64, CX
	MOVOU  k512<>(SB), X7

loop64:
	CMPQ CX, $64
	JB   combine

	MOVOA     X0, X8
	PCLMULQDQ $0x00, X7, X0 // lo(A0) ⊗ x^512
	PCLMULQDQ $0x11, X7, X8 // hi(A0) ⊗ x^576
	PXOR      X8, X0
	MOVOU     0(SI), X8
	PSHUFB    X15, X8
	PXOR      X8, X0

	MOVOA     X1, X8
	PCLMULQDQ $0x00, X7, X1
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X1
	MOVOU     16(SI), X8
	PSHUFB    X15, X8
	PXOR      X8, X1

	MOVOA     X2, X8
	PCLMULQDQ $0x00, X7, X2
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X2
	MOVOU     32(SI), X8
	PSHUFB    X15, X8
	PXOR      X8, X2

	MOVOA     X3, X8
	PCLMULQDQ $0x00, X7, X3
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X3
	MOVOU     48(SI), X8
	PSHUFB    X15, X8
	PXOR      X8, X3

	ADDQ $64, SI
	SUBQ $64, CX
	JMP  loop64

combine:
	// Fold the four lanes into one at 128-bit distance:
	// A = fold(fold(fold(A0)⊕A1)⊕A2)⊕A3.
	MOVOU     k128<>(SB), X7
	MOVOA     X0, X8
	PCLMULQDQ $0x00, X7, X0
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X0
	PXOR      X1, X0
	MOVOA     X0, X8
	PCLMULQDQ $0x00, X7, X0
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X0
	PXOR      X2, X0
	MOVOA     X0, X8
	PCLMULQDQ $0x00, X7, X0
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X0
	PXOR      X3, X0
	JMP       tail16

small:
	// 16–48 bytes: single accumulator, no 4-way stride.
	MOVOU  0(SI), X0
	PSHUFB X15, X0
	PXOR   X5, X0
	ADDQ   $16, SI
	SUBQ   $16, CX
	MOVOU  k128<>(SB), X7

tail16:
	CMPQ CX, $16
	JB   done

	MOVOA     X0, X8
	PCLMULQDQ $0x00, X7, X0
	PCLMULQDQ $0x11, X7, X8
	PXOR      X8, X0
	MOVOU     0(SI), X8
	PSHUFB    X15, X8
	PXOR      X8, X0
	ADDQ      $16, SI
	SUBQ      $16, CX
	JMP       tail16

done:
	PEXTRQ $1, X0, AX
	MOVQ   X0, BX
	MOVQ   AX, hi+24(FP)
	MOVQ   BX, lo+32(FP)
	RET
