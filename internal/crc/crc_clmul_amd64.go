//go:build amd64 && !purego

package crc

import "repro/internal/cpu"

// hasCLMUL gates Update's dispatch to the PCLMULQDQ folding kernel. SSE4.1
// is required for the epilogue's PEXTRQ; every CPU shipping PCLMULQDQ has
// it, but the dispatch checks anyway so the pairing is explicit.
var hasCLMUL = cpu.X86.HasPCLMULQDQ && cpu.X86.HasSSE41

// clmulBlocks is implemented in crc_amd64.s. It folds n bytes at p
// (n ≥ 16, n%16 == 0) into a 128-bit accumulator congruent mod P to the
// byte stream with crc prepended.
//
//go:noescape
func clmulBlocks(crc uint64, p *byte, n int) (hi, lo uint64)

// updateCLMUL is the asm-backed engine behind Update: fold all whole
// 16-byte blocks with carry-less multiplies, reduce the accumulator with
// one table round, and finish the sub-block tail byte-at-a-time.
func updateCLMUL(crc uint64, data []byte) uint64 {
	blocks := len(data) &^ 15
	hi, lo := clmulBlocks(crc, &data[0], blocks)
	crc = foldReduce(hi, lo)
	for _, b := range data[blocks:] {
		crc = table[byte(crc>>56)^b] ^ crc<<8
	}
	return crc
}
