package crc

import (
	"math/rand"
	"testing"
)

// foldConstants re-derives x^e mod P by long division for the exponents
// the assembly kernel hardcodes.
func foldConstants() map[int]uint64 {
	r := Poly // x^64 mod P
	out := map[int]uint64{}
	for e := 65; e <= 576; e++ {
		if r&(1<<63) != 0 {
			r = r<<1 ^ Poly
		} else {
			r <<= 1
		}
		switch e {
		case 128, 192, 512, 576:
			out[e] = r
		}
	}
	return out
}

// TestFoldConstants pins the DATA constants in crc_amd64.s to their
// mathematical derivation, so a typo in the assembly's constant block is a
// test failure here rather than a silent wrong-CRC on some input class.
func TestFoldConstants(t *testing.T) {
	want := map[int]uint64{
		128: 0x05F5C3C7EB52FAB6, // k128 low qword
		192: 0x4EB938A7D257740E, // k128 high qword
		512: 0x5F6843CA540DF020, // k512 low qword
		576: 0xDDF4B6981205B83F, // k512 high qword
	}
	got := foldConstants()
	for e, w := range want {
		if got[e] != w {
			t.Errorf("x^%d mod P = %#016x, assembly uses %#016x", e, got[e], w)
		}
	}
}

// TestFoldReduce pins the Go-side 128→64-bit reduction: for any 128-bit
// accumulator value, foldReduce must equal the CRC of its 16 bytes taken
// big-endian with zero initial state.
func TestFoldReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		hi, lo := rng.Uint64(), rng.Uint64()
		var b [16]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(hi >> (56 - 8*i))
			b[8+i] = byte(lo >> (56 - 8*i))
		}
		if got, want := foldReduce(hi, lo), UpdateBitwise(0, b[:]); got != want {
			t.Fatalf("foldReduce(%#x, %#x) = %#x, want %#x", hi, lo, got, want)
		}
	}
}

// TestCLMULMatchesReference drives the asm kernel directly (bypassing
// Update's length gate) across every block-count regime — below the
// 4-lane stride, exactly at it, mid-loop, and with every tail length —
// against the slicing-by-16 reference, with nonzero initial states.
func TestCLMULMatchesReference(t *testing.T) {
	if !hasCLMUL {
		t.Skip("no CLMUL on this host/build")
	}
	rng := rand.New(rand.NewSource(22))
	buf := make([]byte, 4096)
	rng.Read(buf)
	lengths := []int{16, 17, 31, 32, 48, 63, 64, 65, 79, 80, 127, 128, 129,
		192, 242, 250, 256, 1000, 4096}
	for _, n := range lengths {
		for _, init := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, rng.Uint64()} {
			want := UpdateSlicing16(init, buf[:n])
			if got := updateCLMUL(init, buf[:n]); got != want {
				t.Fatalf("n=%d init=%#x: clmul %#x != slicing16 %#x", n, init, got, want)
			}
		}
	}
}

// TestCLMULIncrementalSplits checks that mixed clmul/table incremental
// updates through Update agree with one-shot for every split of a
// flit-sized message — the contract Checksum's segment loop and the ISN
// prefix path rely on.
func TestCLMULIncrementalSplits(t *testing.T) {
	if !hasCLMUL {
		t.Skip("no CLMUL on this host/build")
	}
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, 300)
	rng.Read(data)
	want := Update(0, data)
	if ref := UpdateBitwise(0, data); want != ref {
		t.Fatalf("one-shot dispatched %#x != bitwise %#x", want, ref)
	}
	for cut := 0; cut <= len(data); cut++ {
		if got := Update(Update(0, data[:cut]), data[cut:]); got != want {
			t.Fatalf("cut=%d: incremental %#x != one-shot %#x", cut, got, want)
		}
	}
}
