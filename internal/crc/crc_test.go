package crc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 240, 242, 1000} {
		for trial := 0; trial < 20; trial++ {
			data := make([]byte, n)
			rng.Read(data)
			ref := UpdateBitwise(0, data)
			if got := UpdateTable(0, data); got != ref {
				t.Fatalf("n=%d: table %#x != bitwise %#x", n, got, ref)
			}
			if got := UpdateSlicing8(0, data); got != ref {
				t.Fatalf("n=%d: slicing-8 %#x != bitwise %#x", n, got, ref)
			}
			if got := UpdateSlicing16(0, data); got != ref {
				t.Fatalf("n=%d: slicing-16 %#x != bitwise %#x", n, got, ref)
			}
			if got := Update(0, data); got != ref {
				t.Fatalf("n=%d: dispatched %#x != bitwise %#x", n, got, ref)
			}
		}
	}
}

func TestEnginesAgreeProperty(t *testing.T) {
	prop := func(data []byte, init uint64) bool {
		ref := UpdateBitwise(init, data)
		return UpdateTable(init, data) == ref &&
			UpdateSlicing8(init, data) == ref &&
			UpdateSlicing16(init, data) == ref &&
			Update(init, data) == ref
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChecksumSegmentsEqualsContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	whole := make([]byte, 242)
	rng.Read(whole)
	want := Checksum(whole)
	if got := Checksum(whole[:2], whole[2:]); got != want {
		t.Fatalf("segments: %#x != %#x", got, want)
	}
	if got := Checksum(whole[:100], whole[100:100], whole[100:]); got != want {
		t.Fatalf("empty mid-segment: %#x != %#x", got, want)
	}
}

func TestChecksumEmptyIsZero(t *testing.T) {
	if Checksum() != 0 {
		t.Error("Checksum() != 0")
	}
	if Checksum(nil) != 0 {
		t.Error("Checksum(nil) != 0")
	}
}

// CRC with zero init and no final XOR is linear over GF(2): the checksum of
// an XOR of equal-length messages is the XOR of their checksums. This is the
// algebraic fact that makes the ISN fold analyzable.
func TestLinearity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]byte, 242)
		b := make([]byte, 242)
		rng.Read(a)
		rng.Read(b)
		x := make([]byte, 242)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		return Checksum(x) == (Checksum(a) ^ Checksum(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBurstDetection verifies the guaranteed detection of all burst errors
// up to 64 bits (Section 4.1: "burst errors up to 64 bits long with complete
// reliability"). Every burst start position in a flit-sized message is
// exercised with random burst contents up to 64 bits wide.
func TestBurstDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	msg := make([]byte, 242) // header + payload of a 256B flit
	rng.Read(msg)
	clean := Checksum(msg)

	bitLen := len(msg) * 8
	for start := 0; start < bitLen; start += 1 {
		width := 1 + rng.Intn(64)
		if start+width > bitLen {
			width = bitLen - start
		}
		corrupted := append([]byte(nil), msg...)
		// A burst of `width` bits starting at `start`: first and last bit
		// flipped (defining the burst extent), interior random.
		flip := func(bit int) {
			corrupted[bit/8] ^= 1 << (7 - bit%8)
		}
		flip(start)
		for b := start + 1; b < start+width-1; b++ {
			if rng.Intn(2) == 1 {
				flip(b)
			}
		}
		if width > 1 {
			flip(start + width - 1)
		}
		if Checksum(corrupted) == clean {
			t.Fatalf("undetected %d-bit burst at bit %d", width, start)
		}
	}
}

// TestRandomSparseErrorsDetected samples 1..4-bit random error patterns
// (Section 4.1: the 8B CRC detects up to four random bit errors).
func TestRandomSparseErrorsDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	msg := make([]byte, 242)
	rng.Read(msg)
	clean := Checksum(msg)
	bitLen := len(msg) * 8
	for nerr := 1; nerr <= 4; nerr++ {
		for trial := 0; trial < 5000; trial++ {
			corrupted := append([]byte(nil), msg...)
			seen := map[int]bool{}
			for len(seen) < nerr {
				seen[rng.Intn(bitLen)] = true
			}
			for bit := range seen {
				corrupted[bit/8] ^= 1 << (7 - bit%8)
			}
			if Checksum(corrupted) == clean {
				t.Fatalf("undetected %d-bit error pattern", nerr)
			}
		}
	}
}

// TestISNSequenceMismatchAlwaysDetected is the core ISN property: for any
// payload, two checksums computed with distinct 10-bit sequence numbers
// always differ, so a receiver decoding with ESeqNum != SeqNum is guaranteed
// to see a CRC mismatch (Section 5).
func TestISNSequenceMismatchAlwaysDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	msg := make([]byte, 242)
	rng.Read(msg)
	sums := make(map[uint64]uint16)
	for seq := uint16(0); seq <= SeqMask; seq++ {
		sum := ChecksumISN(seq, msg)
		if prev, dup := sums[sum]; dup {
			t.Fatalf("seq %d and %d collide: %#x", prev, seq, sum)
		}
		sums[sum] = seq
	}
	if len(sums) != 1024 {
		t.Fatalf("got %d distinct checksums, want 1024", len(sums))
	}
}

// The fold is equivalent to XORing the sequence bits into the message tail.
func TestISNFoldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	msg := make([]byte, 242)
	rng.Read(msg)
	for _, seq := range []uint16{0, 1, 2, 255, 256, 512, 1023} {
		folded := append([]byte(nil), msg...)
		folded[240] ^= byte(seq >> 8)
		folded[241] ^= byte(seq)
		want := Checksum(folded)
		if got := ChecksumISN(seq, msg); got != want {
			t.Fatalf("seq=%d: fold %#x != manual %#x", seq, got, want)
		}
	}
}

// The fold must work when the final two bytes straddle a segment boundary.
func TestISNSegmentBoundaryStraddle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msg := make([]byte, 50)
	rng.Read(msg)
	for _, seq := range []uint16{0, 77, 1023} {
		want := ChecksumISN(seq, msg)
		for _, cut := range []int{48, 49, 50, 1, 2} {
			got := ChecksumISN(seq, msg[:cut], msg[cut:])
			if got != want {
				t.Fatalf("seq=%d cut=%d: %#x != %#x", seq, cut, got, want)
			}
		}
		// Three-way split with a tiny tail segment.
		if got := ChecksumISN(seq, msg[:10], msg[10:49], msg[49:]); got != want {
			t.Fatalf("seq=%d 3-way: mismatch", seq)
		}
	}
}

func TestISNSeqMaskedToTenBits(t *testing.T) {
	msg := make([]byte, 16)
	if ChecksumISN(0, msg) != ChecksumISN(1024, msg) {
		t.Error("seq 1024 should alias to 0 (10-bit wrap)")
	}
	if ChecksumISNAppend(0, msg) != ChecksumISNAppend(1024, msg) {
		t.Error("append variant: seq 1024 should alias to 0")
	}
}

func TestISNSeqZeroEqualsPlainChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	msg := make([]byte, 242)
	rng.Read(msg)
	if ChecksumISN(0, msg) != Checksum(msg) {
		t.Error("ChecksumISN(0, msg) should equal Checksum(msg): fold of zero is identity")
	}
}

func TestISNTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 1-byte message")
		}
	}()
	ChecksumISN(1, []byte{0x42})
}

// The append-variant ablation has the same injectivity over sequence space.
func TestISNAppendSequenceMismatchDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	msg := make([]byte, 242)
	rng.Read(msg)
	sums := make(map[uint64]bool)
	for seq := uint16(0); seq <= SeqMask; seq++ {
		sums[ChecksumISNAppend(seq, msg)] = true
	}
	if len(sums) != 1024 {
		t.Fatalf("append variant: %d distinct checksums, want 1024", len(sums))
	}
}

// A payload error combined with the right sequence skew could in principle
// cancel — but only if the payload error equals the seq fold difference in
// the last two bytes. Verify detection when both payload and seq differ
// elsewhere.
func TestISNJointPayloadSeqErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	msg := make([]byte, 242)
	rng.Read(msg)
	for trial := 0; trial < 2000; trial++ {
		seqTx := uint16(rng.Intn(1024))
		seqRx := uint16(rng.Intn(1024))
		corrupted := append([]byte(nil), msg...)
		// Flip a random bit outside the folded tail.
		bit := rng.Intn(240 * 8)
		corrupted[bit/8] ^= 1 << (7 - bit%8)
		if ChecksumISN(seqTx, msg) == ChecksumISN(seqRx, corrupted) {
			t.Fatalf("undetected joint error: seqTx=%d seqRx=%d bit=%d", seqTx, seqRx, bit)
		}
	}
}

// Incremental updates through block-size boundaries must agree with the
// one-shot computation for every split point — the contract Checksum's
// segment loop relies on now that Update mixes 16-, 8-, and 1-byte steps.
func TestUpdateIncrementalSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 242)
	rng.Read(data)
	want := UpdateBitwise(0, data)
	for cut := 0; cut <= len(data); cut++ {
		if got := Update(Update(0, data[:cut]), data[cut:]); got != want {
			t.Fatalf("cut=%d: incremental %#x != one-shot %#x", cut, got, want)
		}
	}
}

func BenchmarkChecksumCLMULFlit(b *testing.B) {
	if !UsingCLMUL() {
		b.Skip("no CLMUL on this host/build")
	}
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = Update(0, data)
	}
}

func BenchmarkChecksumSlicing16Flit(b *testing.B) {
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = UpdateSlicing16(0, data)
	}
}

func BenchmarkChecksumSlicing8Flit(b *testing.B) {
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = UpdateSlicing8(0, data)
	}
}

func BenchmarkChecksumTableFlit(b *testing.B) {
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = UpdateTable(0, data)
	}
}

func BenchmarkChecksumBitwiseFlit(b *testing.B) {
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = UpdateBitwise(0, data)
	}
}

func BenchmarkChecksumISNFlit(b *testing.B) {
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = ChecksumISN(uint16(i), data)
	}
}

func BenchmarkChecksumISNAppendFlit(b *testing.B) {
	data := make([]byte, 242)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		sink = ChecksumISNAppend(uint16(i), data)
	}
}

var sink uint64
