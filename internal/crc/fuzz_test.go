package crc

import (
	"bytes"
	"testing"
)

// FuzzUpdate cross-checks every engine behind Update — the dispatched
// path (CLMUL where available), slicing-by-16, slicing-by-8, and the
// single-table loop — and pins incremental splits against the one-shot
// computation. Run under both the default and purego builds by the CI
// kernel leg, so the asm path can never drift from the reference
// unnoticed.
func FuzzUpdate(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint64(0))
	f.Add([]byte("hello, flit"), uint16(3), uint64(1))
	f.Add(bytes.Repeat([]byte{0xA5}, 242), uint16(16), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(bytes.Repeat([]byte{0x00}, 64), uint16(63), uint64(0x42F0E1EBA9EA3693))
	f.Add(bytes.Repeat([]byte{0xFF}, 129), uint16(64), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, split uint16, state uint64) {
		want := UpdateSlicing16(state, data)
		if got := Update(state, data); got != want {
			t.Fatalf("dispatched %#x != slicing16 %#x (n=%d)", got, want, len(data))
		}
		if got := UpdateSlicing8(state, data); got != want {
			t.Fatalf("slicing8 %#x != slicing16 %#x", got, want)
		}
		if got := UpdateTable(state, data); got != want {
			t.Fatalf("table %#x != slicing16 %#x", got, want)
		}
		cut := int(split)
		if len(data) > 0 {
			cut %= len(data) + 1
		} else {
			cut = 0
		}
		if got := Update(Update(state, data[:cut]), data[cut:]); got != want {
			t.Fatalf("incremental cut=%d %#x != one-shot %#x", cut, got, want)
		}
	})
}

// FuzzChecksumISN pins the ISN fold (including its Update-backed prefix
// fast path) against the definitional reference — XOR the masked sequence
// number into the last two message bytes, then plain-checksum — and
// checks segment-split invariance across the folded tail.
func FuzzChecksumISN(f *testing.F) {
	f.Add([]byte{0, 0}, uint16(0), uint16(0))
	f.Add([]byte("abcdefghij"), uint16(1023), uint16(5))
	f.Add(bytes.Repeat([]byte{0x5A}, 242), uint16(512), uint16(240))
	f.Add(bytes.Repeat([]byte{0x00}, 67), uint16(99), uint16(66))
	f.Fuzz(func(t *testing.T, data []byte, seq uint16, split uint16) {
		if len(data) < 2 {
			return
		}
		folded := append([]byte(nil), data...)
		folded[len(folded)-2] ^= byte((seq & SeqMask) >> 8)
		folded[len(folded)-1] ^= byte(seq & SeqMask)
		want := Checksum(folded)
		if got := ChecksumISN(seq, data); got != want {
			t.Fatalf("ISN %#x != manual fold %#x (n=%d seq=%d)", got, want, len(data), seq)
		}
		cut := int(split) % (len(data) + 1)
		if got := ChecksumISN(seq, data[:cut], data[cut:]); got != want {
			t.Fatalf("ISN split cut=%d %#x != %#x", cut, got, want)
		}
	})
}
