//go:build !amd64 || purego

package crc

// hasCLMUL is constant-false off amd64 and under the purego build tag, so
// Update's dispatch branch folds away entirely and the slicing-by-16
// engine is the hot path, exactly as before the kernel layer existed.
const hasCLMUL = false

// updateCLMUL is unreachable when hasCLMUL is false; the stub exists so
// Update compiles identically under every build configuration.
func updateCLMUL(crc uint64, data []byte) uint64 {
	panic("crc: updateCLMUL without CLMUL support")
}
