// Package crc implements the 64-bit CRC used by CXL/RXL flits, including
// the Implicit Sequence Number (ISN) variant at the heart of the paper.
//
// The polynomial is CRC-64/ECMA-182 (0x42F0E1EBA9EA3693), MSB-first, zero
// initial value and no final XOR. The paper relies only on generic 64-bit
// CRC properties — guaranteed detection of bursts up to 64 bits (any
// polynomial with a nonzero constant term) and a 2^-64 escape probability
// for arbitrary corruption — so any well-conditioned CRC-64 reproduces the
// evaluation.
//
// Five implementations are provided and cross-checked by tests: a
// bit-serial reference, a single-table byte-at-a-time engine, a
// slicing-by-8 engine, the slicing-by-16 engine (16 precomputed 256-entry
// tables consume one 16-byte block per iteration with two independent
// 8-byte loads, so the table lookups of the two halves overlap in the
// pipeline), and a PCLMULQDQ carry-less-multiply folding kernel in Go
// assembly (crc_amd64.s). Update dispatches between the last two at
// runtime via internal/cpu feature detection; building with -tags purego
// (or setting RXL_PUREGO) pins everything to the portable table engines.
// The throughput spread between the engines is one of the ablations
// called out in DESIGN.md.
//
// # ISN encoding
//
// ChecksumISN folds a 10-bit sequence number into the checksum by XORing it
// into the final two bytes of the message stream before CRC computation,
// exactly as Section 7.3 describes ("the 10-bit SeqNum is XORed with the
// lower 10 bits of the 240B payload"): the wire payload is unchanged, only
// the CRC sees the folded bytes. A receiver computing ChecksumISN with its
// expected sequence number gets a mismatch whenever either the payload or
// the sequence position differs — drop detection with zero header cost.
package crc

// Poly is the CRC-64/ECMA-182 generator polynomial in normal (MSB-first)
// representation. Its constant term is 1, which guarantees detection of all
// error bursts no longer than 64 bits.
const Poly uint64 = 0x42F0E1EBA9EA3693

// SeqBits is the width of the sequence number folded by ChecksumISN,
// matching the 10-bit FSN field of CXL 256B flits.
const SeqBits = 10

// SeqMask masks a sequence number to SeqBits.
const SeqMask uint16 = 1<<SeqBits - 1

// Size is the checksum size in bytes (8B CRC field of the 256B flit).
const Size = 8

var (
	table [256]uint64
	// sliceTbl[k][b] is the CRC of byte b followed by k zero bytes —
	// table-advanced k times. The slicing-by-8 engine uses rows 0..7, the
	// slicing-by-16 engine all 16 rows.
	sliceTbl [16][256]uint64
)

func init() {
	for b := 0; b < 256; b++ {
		crc := uint64(b) << 56
		for i := 0; i < 8; i++ {
			if crc&(1<<63) != 0 {
				crc = crc<<1 ^ Poly
			} else {
				crc <<= 1
			}
		}
		table[b] = crc
	}
	sliceTbl[0] = table
	for k := 1; k < len(sliceTbl); k++ {
		for b := 0; b < 256; b++ {
			prev := sliceTbl[k-1][b]
			sliceTbl[k][b] = table[byte(prev>>56)] ^ prev<<8
		}
	}
}

// clmulMin is the shortest input Update hands to the carry-less-multiply
// kernel. Below it the folding prologue/epilogue overhead rivals the table
// engine, and the dominant short inputs (ChecksumISN tails, sub-16-byte
// segments) stay on the slicing path anyway.
const clmulMin = 64

// Update processes data into the running CRC state and returns the new
// state. A zero state is a fresh checksum.
//
// Update is the dispatch point of the kernel layer: on amd64 hosts with
// carry-less multiply (and outside the purego build tag) inputs of at
// least clmulMin bytes fold through the PCLMULQDQ kernel in crc_amd64.s;
// everything else runs the portable slicing-by-16 engine. All engines are
// bit-identical by construction and pinned against each other by the
// differential and fuzz suites.
func Update(crc uint64, data []byte) uint64 {
	if hasCLMUL && len(data) >= clmulMin {
		return updateCLMUL(crc, data)
	}
	return UpdateSlicing16(crc, data)
}

// UsingCLMUL reports whether Update dispatches long inputs to the
// carry-less-multiply kernel on this host (amd64 with PCLMULQDQ+SSE4.1,
// not built with -tags purego, not disabled via RXL_PUREGO).
func UsingCLMUL() bool { return hasCLMUL }

// UpdateSlicing16 is the slicing-by-16 engine (8-byte and byte-at-a-time
// tails): the portable hot path, the dispatch fallback, and the reference
// the CLMUL kernel is differentially pinned against.
func UpdateSlicing16(crc uint64, data []byte) uint64 {
	for len(data) >= 16 {
		// One 16-byte block per iteration: the running state folds into
		// the high half, and each half's eight table lookups depend only
		// on its own load, so the two streams overlap in the pipeline.
		hi := crc ^ (uint64(data[0])<<56 | uint64(data[1])<<48 | uint64(data[2])<<40 |
			uint64(data[3])<<32 | uint64(data[4])<<24 | uint64(data[5])<<16 |
			uint64(data[6])<<8 | uint64(data[7]))
		lo := uint64(data[8])<<56 | uint64(data[9])<<48 | uint64(data[10])<<40 |
			uint64(data[11])<<32 | uint64(data[12])<<24 | uint64(data[13])<<16 |
			uint64(data[14])<<8 | uint64(data[15])
		crc = sliceTbl[15][byte(hi>>56)] ^
			sliceTbl[14][byte(hi>>48)] ^
			sliceTbl[13][byte(hi>>40)] ^
			sliceTbl[12][byte(hi>>32)] ^
			sliceTbl[11][byte(hi>>24)] ^
			sliceTbl[10][byte(hi>>16)] ^
			sliceTbl[9][byte(hi>>8)] ^
			sliceTbl[8][byte(hi)] ^
			sliceTbl[7][byte(lo>>56)] ^
			sliceTbl[6][byte(lo>>48)] ^
			sliceTbl[5][byte(lo>>40)] ^
			sliceTbl[4][byte(lo>>32)] ^
			sliceTbl[3][byte(lo>>24)] ^
			sliceTbl[2][byte(lo>>16)] ^
			sliceTbl[1][byte(lo>>8)] ^
			sliceTbl[0][byte(lo)]
		data = data[16:]
	}
	return UpdateSlicing8(crc, data)
}

// foldReduce finishes the carry-less-multiply kernel: the 128-bit folding
// accumulator (hi·x^64 + lo) is congruent mod P to the whole processed
// stream, so the running CRC state is exactly the checksum of its 16 bytes
// taken big-endian — one slicing-by-16 table round, no Barrett constants.
func foldReduce(hi, lo uint64) uint64 {
	return sliceTbl[15][byte(hi>>56)] ^
		sliceTbl[14][byte(hi>>48)] ^
		sliceTbl[13][byte(hi>>40)] ^
		sliceTbl[12][byte(hi>>32)] ^
		sliceTbl[11][byte(hi>>24)] ^
		sliceTbl[10][byte(hi>>16)] ^
		sliceTbl[9][byte(hi>>8)] ^
		sliceTbl[8][byte(hi)] ^
		sliceTbl[7][byte(lo>>56)] ^
		sliceTbl[6][byte(lo>>48)] ^
		sliceTbl[5][byte(lo>>40)] ^
		sliceTbl[4][byte(lo>>32)] ^
		sliceTbl[3][byte(lo>>24)] ^
		sliceTbl[2][byte(lo>>16)] ^
		sliceTbl[1][byte(lo>>8)] ^
		sliceTbl[0][byte(lo)]
}

// UpdateSlicing8 is the slicing-by-8 engine: one 8-byte block per
// iteration. It remains the tail processor of Update and the mid-rung of
// the kernel ablation (bitwise → table → by-8 → by-16).
func UpdateSlicing8(crc uint64, data []byte) uint64 {
	for len(data) >= 8 {
		crc ^= uint64(data[0])<<56 | uint64(data[1])<<48 | uint64(data[2])<<40 |
			uint64(data[3])<<32 | uint64(data[4])<<24 | uint64(data[5])<<16 |
			uint64(data[6])<<8 | uint64(data[7])
		crc = sliceTbl[7][byte(crc>>56)] ^
			sliceTbl[6][byte(crc>>48)] ^
			sliceTbl[5][byte(crc>>40)] ^
			sliceTbl[4][byte(crc>>32)] ^
			sliceTbl[3][byte(crc>>24)] ^
			sliceTbl[2][byte(crc>>16)] ^
			sliceTbl[1][byte(crc>>8)] ^
			sliceTbl[0][byte(crc)]
		data = data[8:]
	}
	for _, b := range data {
		crc = table[byte(crc>>56)^b] ^ crc<<8
	}
	return crc
}

// UpdateTable is the single-table byte-at-a-time engine (ablation baseline).
func UpdateTable(crc uint64, data []byte) uint64 {
	for _, b := range data {
		crc = table[byte(crc>>56)^b] ^ crc<<8
	}
	return crc
}

// UpdateBitwise is the bit-serial reference implementation used to validate
// the table-driven engines.
func UpdateBitwise(crc uint64, data []byte) uint64 {
	for _, b := range data {
		crc ^= uint64(b) << 56
		for i := 0; i < 8; i++ {
			if crc&(1<<63) != 0 {
				crc = crc<<1 ^ Poly
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Checksum returns the CRC-64 of the concatenation of the given segments.
// Passing segments avoids assembling a contiguous flit image: the flit
// encoder checksums header and payload without copies.
func Checksum(segments ...[]byte) uint64 {
	var crc uint64
	for _, s := range segments {
		crc = Update(crc, s)
	}
	return crc
}

// ChecksumISN returns the ISN checksum: the CRC-64 of the concatenated
// segments with the (SeqBits)-bit sequence number XOR-folded into the final
// two bytes of the stream. The segments themselves are not modified.
//
// The fold places seq's low 8 bits in the last byte and bits 9:8 in the low
// bits of the second-to-last byte, so two checksums computed with different
// 10-bit sequence numbers over identical data always differ in their folded
// input — a sequence mismatch is exactly as detectable as a 2-byte-burst
// payload error, which a 64-bit CRC detects with certainty.
//
// The total length of the segments must be at least 2 bytes.
func ChecksumISN(seq uint16, segments ...[]byte) uint64 {
	seq &= SeqMask
	total := 0
	for _, s := range segments {
		total += len(s)
	}
	if total < 2 {
		panic("crc: ChecksumISN needs at least 2 bytes of message")
	}
	var crc uint64
	pos := 0
	for _, s := range segments {
		// Everything before stream position total-2 is untouched by the
		// fold: run it through the dispatched block engine. Only the
		// final two bytes of the stream go byte-at-a-time with the
		// sequence bits XORed in.
		clean := total - 2 - pos
		if clean > len(s) {
			clean = len(s)
		}
		if clean > 0 {
			crc = Update(crc, s[:clean])
		} else {
			clean = 0
		}
		for i := clean; i < len(s); i++ {
			b := s[i]
			switch pos + i {
			case total - 2:
				b ^= byte(seq >> 8) // bits 9:8 into second-to-last byte
			case total - 1:
				b ^= byte(seq) // bits 7:0 into last byte
			}
			crc = table[byte(crc>>56)^b] ^ crc<<8
		}
		pos += len(s)
	}
	return crc
}

// Verify reports whether sum is the CRC-64 of the concatenated segments —
// the byte-level half of the verify-skip contract: flits whose images are
// provably untouched since sealing (flit.Clean) answer the same question
// in O(1) and never reach this function on the fast path.
func Verify(sum uint64, segments ...[]byte) bool {
	return Checksum(segments...) == sum
}

// VerifyISN reports whether sum is the ISN checksum of the segments under
// seq. Two ISN checksums over identical data with different (SeqBits)-bit
// sequence numbers always differ: the fold is a 2-byte burst, which a
// 64-bit CRC detects with certainty. The fast path relies on exactly that
// property to replace this computation with a sequence comparison.
func VerifyISN(sum uint64, seq uint16, segments ...[]byte) bool {
	return ChecksumISN(seq, segments...) == sum
}

// ChecksumISNAppend is the ablation variant of ISN that appends the
// sequence number as a trailing 2-byte big-endian word instead of folding it
// into the payload tail. Both variants give identical detection guarantees;
// the fold variant matches the paper's 10-XOR-gate hardware argument.
func ChecksumISNAppend(seq uint16, segments ...[]byte) uint64 {
	seq &= SeqMask
	var crc uint64
	for _, s := range segments {
		crc = Update(crc, s)
	}
	return Update(crc, []byte{byte(seq >> 8), byte(seq)})
}
