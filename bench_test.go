// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark both
// measures its code path and reports the reproduced paper quantity as a
// custom metric, so `go test -bench=. -benchmem` regenerates every number
// the paper reports:
//
//	E1-E5   Section 7.1 equations (FER, p_correct, FIT direct/switched)
//	E6      Fig. 8 FIT sweep
//	E7-E10  Section 7.2 bandwidth-loss equations
//	E11-E13 Fig. 4 / Fig. 5 deterministic failure scenarios
//	E14     Section 2.5 FEC burst-detection fractions
//	E15     Section 4.1 CRC detection (see internal/crc for the exhaustive tests)
//	E16     Section 7.3 hardware cost
//	E17     Fig. 3 flit encode pipeline
//
// Throughput benches at the bottom measure the live simulator itself.
package rxl_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/crc"
	"repro/internal/flit"
	"repro/internal/hwcost"
	"repro/internal/phy"
	"repro/internal/reliability"
	"repro/internal/rs"
)

// --- E1-E5: Section 7.1 equations ---------------------------------------

// BenchmarkEq1FER regenerates Eq. 1 (FER ≈ 2.0e-3 at BER 1e-6).
func BenchmarkEq1FER(b *testing.B) {
	p := reliability.DefaultParams()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.FER()
	}
	b.ReportMetric(v, "FER")
}

// BenchmarkEq3Correctable regenerates Eq. 3 (p_correct > 98.5%).
func BenchmarkEq3Correctable(b *testing.B) {
	p := reliability.DefaultParams()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.PCorrect()
	}
	b.ReportMetric(v, "p_correct")
}

// BenchmarkEq5DirectFIT regenerates Eq. 4-5 (FIT ≈ 2.9e-3 direct).
func BenchmarkEq5DirectFIT(b *testing.B) {
	p := reliability.DefaultParams()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.FITDirect()
	}
	b.ReportMetric(v*1e3, "microFIT")
}

// BenchmarkEq8SwitchedFIT regenerates Eq. 6-8 (FIT ≈ 5.4e15, CXL 1 switch).
func BenchmarkEq8SwitchedFIT(b *testing.B) {
	p := reliability.DefaultParams()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.FITCXL(1)
	}
	b.ReportMetric(v/1e15, "petaFIT")
}

// BenchmarkEq10RXLFIT regenerates Eq. 9-10 (FIT ≈ 2.9e-3, RXL 1 switch).
func BenchmarkEq10RXLFIT(b *testing.B) {
	p := reliability.DefaultParams()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.FITRXL(1)
	}
	b.ReportMetric(v*1e3, "microFIT")
}

// --- E6: Fig. 8 ----------------------------------------------------------

// BenchmarkFig8FITSweep regenerates the full Fig. 8 series (levels 0-8)
// and reports the CXL/RXL improvement ratio at one switching level
// (paper: >1e18).
func BenchmarkFig8FITSweep(b *testing.B) {
	p := reliability.DefaultParams()
	var pts []reliability.Point
	for i := 0; i < b.N; i++ {
		pts = p.Fig8(8)
	}
	b.ReportMetric(pts[1].FITCXL/pts[1].FITRXL/1e17, "improvement_e17")
}

// --- E7-E10: Section 7.2 bandwidth equations ------------------------------

// BenchmarkEq11BWDirect regenerates Eq. 11 (BW loss ≈ 0.15% direct).
func BenchmarkEq11BWDirect(b *testing.B) {
	p := rxl.DefaultPerformance()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.BWLossDirect()
	}
	b.ReportMetric(100*v, "bwloss_pct")
}

// BenchmarkEq12BWSwitched regenerates Eq. 12 (≈0.30% with one switch).
func BenchmarkEq12BWSwitched(b *testing.B) {
	p := rxl.DefaultPerformance()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.BWLossSwitched(1)
	}
	b.ReportMetric(100*v, "bwloss_pct")
}

// BenchmarkEq13BWNoPiggyback regenerates Eq. 13 (loss = p_coalescing).
func BenchmarkEq13BWNoPiggyback(b *testing.B) {
	p := rxl.DefaultPerformance()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.BWLossNoPiggyback()
	}
	b.ReportMetric(100*v, "bwloss_pct")
}

// BenchmarkEq14BWRXL regenerates Eq. 14 (RXL ≈ 0.30%, same as Eq. 12).
func BenchmarkEq14BWRXL(b *testing.B) {
	p := rxl.DefaultPerformance()
	var v float64
	for i := 0; i < b.N; i++ {
		v = p.BWLossRXL(1)
	}
	b.ReportMetric(100*v, "bwloss_pct")
}

// --- E11-E13: deterministic failure scenarios -----------------------------

// BenchmarkFig4CXL runs the Fig. 4 drop script under CXL; the metric is
// the misorder count (paper: 1 — the failure occurs).
func BenchmarkFig4CXL(b *testing.B) {
	mis := 0
	for i := 0; i < b.N; i++ {
		if core.RunFig4(rxl.CXL).Misordered {
			mis = 1
		}
	}
	b.ReportMetric(float64(mis), "misordered")
}

// BenchmarkFig4RXL runs the same script under RXL (paper: 0 misorders).
func BenchmarkFig4RXL(b *testing.B) {
	mis := 0
	for i := 0; i < b.N; i++ {
		if core.RunFig4(rxl.RXL).Misordered {
			mis = 1
		}
	}
	b.ReportMetric(float64(mis), "misordered")
}

// BenchmarkFig5aCXL: duplicate request executions under CXL (paper: ≥1).
func BenchmarkFig5aCXL(b *testing.B) {
	var dups uint64
	for i := 0; i < b.N; i++ {
		dups = core.RunFig5a(rxl.CXL).DuplicateExecutions
	}
	b.ReportMetric(float64(dups), "dup_exec")
}

// BenchmarkFig5aRXL: duplicate request executions under RXL (paper: 0).
func BenchmarkFig5aRXL(b *testing.B) {
	var dups uint64
	for i := 0; i < b.N; i++ {
		dups = core.RunFig5a(rxl.RXL).DuplicateExecutions
	}
	b.ReportMetric(float64(dups), "dup_exec")
}

// BenchmarkFig5bCXL: intra-CQID ordering violations under CXL (paper: ≥1).
func BenchmarkFig5bCXL(b *testing.B) {
	var ooo uint64
	for i := 0; i < b.N; i++ {
		ooo = core.RunFig5b(rxl.CXL).OutOfOrderData
	}
	b.ReportMetric(float64(ooo), "ooo_data")
}

// BenchmarkFig5bRXL: intra-CQID ordering violations under RXL (paper: 0).
func BenchmarkFig5bRXL(b *testing.B) {
	var ooo uint64
	for i := 0; i < b.N; i++ {
		ooo = core.RunFig5b(rxl.RXL).OutOfOrderData
	}
	b.ReportMetric(float64(ooo), "ooo_data")
}

// --- E14: FEC burst detection (Section 2.5) -------------------------------

// BenchmarkFECBurstDetection measures burst-injection decode throughput
// and reports the detection fraction for 4-symbol bursts (paper: 2/3).
func BenchmarkFECBurstDetection(b *testing.B) {
	const trialsPerOp = 200
	var det float64
	for i := 0; i < b.N; i++ {
		o := reliability.MeasureFECBurst(4, trialsPerOp, uint64(i)+1)
		det = o.DetectionRate()
	}
	b.ReportMetric(det, "detection_4B")
}

// --- E15: CRC detection (Section 4.1) -------------------------------------

// BenchmarkCRCISNEncode measures the ISN-folded CRC encode rate over full
// flit inputs; the metric confirms zero detectable overhead versus the
// plain CRC path (see BenchmarkCRCPlainEncode).
func BenchmarkCRCISNEncode(b *testing.B) {
	buf := make([]byte, 242)
	phy.NewRNG(1).Fill(buf)
	b.SetBytes(int64(len(buf)))
	var sum uint64
	for i := 0; i < b.N; i++ {
		sum ^= crc.ChecksumISN(uint16(i)&crc.SeqMask, buf)
	}
	sinkU64 = sum
}

// BenchmarkCRCPlainEncode is the baseline for BenchmarkCRCISNEncode.
func BenchmarkCRCPlainEncode(b *testing.B) {
	buf := make([]byte, 242)
	phy.NewRNG(1).Fill(buf)
	b.SetBytes(int64(len(buf)))
	var sum uint64
	for i := 0; i < b.N; i++ {
		sum ^= crc.Checksum(buf)
	}
	sinkU64 = sum
}

var sinkU64 uint64

// BenchmarkCRCSlicing is the table-kernel ablation over a full 242-byte
// flit input (header + payload, the dirty-flit materialization unit):
// slicing-by-16 (the widest portable table engine and the purego hot
// path), slicing-by-8, single-table, and the bit-serial reference. The
// dispatched hot path (CLMUL where available) is BenchmarkCRCCLMUL. CI
// gates the by16 leg absolutely and the table/by16 ratio
// machine-invariantly.
func BenchmarkCRCSlicing(b *testing.B) {
	buf := make([]byte, 242)
	phy.NewRNG(1).Fill(buf)
	for _, eng := range []struct {
		name string
		fn   func(uint64, []byte) uint64
	}{
		{"by16", crc.UpdateSlicing16},
		{"by8", crc.UpdateSlicing8},
		{"table", crc.UpdateTable},
		{"bitwise", crc.UpdateBitwise},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.SetBytes(int64(len(buf)))
			var sum uint64
			for i := 0; i < b.N; i++ {
				sum ^= eng.fn(0, buf)
			}
			sinkU64 = sum
		})
	}
}

// BenchmarkCRCCLMUL measures the dispatched crc.Update hot path over the
// same 242-byte flit input as BenchmarkCRCSlicing — the PCLMULQDQ folding
// kernel on amd64. CI gates the clmul/by16 speedup ratio (≥4×)
// machine-invariantly when the host has the instruction.
func BenchmarkCRCCLMUL(b *testing.B) {
	if !crc.UsingCLMUL() {
		b.Skip("no CLMUL on this host/build")
	}
	buf := make([]byte, 242)
	phy.NewRNG(1).Fill(buf)
	b.Run("clmul", func(b *testing.B) {
		b.SetBytes(int64(len(buf)))
		var sum uint64
		for i := 0; i < b.N; i++ {
			sum ^= crc.Update(0, buf)
		}
		sinkU64 = sum
	})
}

// BenchmarkRSSyndromeVectored compares the word-parallel RS syndrome
// front-end (rs.Code.Verify, the skip-path engine behind every FEC check)
// against the byte-level reference loop over one CXL sub-block
// (86-symbol codeword, 2 parity). CI gates the bytelevel/vectored ratio
// (≥3×) machine-invariantly.
func BenchmarkRSSyndromeVectored(b *testing.B) {
	c := rs.MustNew(84, 2)
	data := make([]byte, 84)
	parity := make([]byte, 2)
	phy.NewRNG(3).Fill(data)
	c.Encode(data, parity)
	ok := false
	b.Run("vectored", func(b *testing.B) {
		b.SetBytes(int64(len(data) + len(parity)))
		for i := 0; i < b.N; i++ {
			ok = c.Verify(data, parity)
		}
	})
	b.Run("bytelevel", func(b *testing.B) {
		b.SetBytes(int64(len(data) + len(parity)))
		for i := 0; i < b.N; i++ {
			ok = c.VerifyReference(data, parity)
		}
	})
	if !ok {
		b.Fatal("benchmark codeword failed verify")
	}
}

// --- E16: hardware cost (Section 7.3) -------------------------------------

// BenchmarkHWCostModel derives the full gate-level CRC encoder model from
// the polynomial and reports the Section 7.3 numbers (10 extra XORs).
func BenchmarkHWCostModel(b *testing.B) {
	var r hwcost.Report
	for i := 0; i < b.N; i++ {
		r = hwcost.NewReport(242, 10)
	}
	b.ReportMetric(float64(r.ISNExtraXORs), "extra_xors")
	b.ReportMetric(float64(r.NetGatesPerEndpoint), "net_gates")
}

// --- E17: flit encode pipeline (Fig. 3) ------------------------------------

// BenchmarkFlitSealRXL measures the full Fig. 3 encode pipeline (ISN CRC +
// 3-way interleaved FEC) per 256B flit.
func BenchmarkFlitSealRXL(b *testing.B) {
	fec := flit.NewFEC()
	var f flit.Flit
	phy.NewRNG(9).Fill(f.Payload())
	b.SetBytes(flit.Size)
	for i := 0; i < b.N; i++ {
		f.SealRXL(uint16(i)&crc.SeqMask, fec)
	}
}

// BenchmarkFlitDecodeRXL measures the receive pipeline: FEC decode plus
// ISN CRC validation of a clean flit.
func BenchmarkFlitDecodeRXL(b *testing.B) {
	fec := flit.NewFEC()
	var f flit.Flit
	phy.NewRNG(9).Fill(f.Payload())
	f.SealRXL(7, fec)
	b.SetBytes(flit.Size)
	ok := false
	for i := 0; i < b.N; i++ {
		g := f
		g.DecodeFEC(fec)
		ok = g.CheckCRCISN(7)
	}
	if !ok {
		b.Fatal("decode failed")
	}
}

// --- Live simulator throughput ---------------------------------------------

func benchSim(b *testing.B, proto rxl.Protocol, levels int, ber float64) {
	b.ReportAllocs()
	fabric := rxl.MustNewFabric(rxl.Config{Protocol: proto, Levels: levels, BER: ber, BurstProb: 0.4, Seed: 11})
	delivered := 0
	fabric.B().Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 64)
	b.SetBytes(flit.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fabric.A().Submit(payload)
		if fabric.A().Queued() > 256 {
			fabric.Run()
		}
	}
	fabric.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkSimRXLDirect: simulator throughput, RXL direct connection.
func BenchmarkSimRXLDirect(b *testing.B) { benchSim(b, rxl.RXL, 0, 0) }

// BenchmarkSimRXLSwitched2: RXL across two switching levels.
func BenchmarkSimRXLSwitched2(b *testing.B) { benchSim(b, rxl.RXL, 2, 0) }

// BenchmarkSimRXLSwitched2BER: two levels with live error injection.
func BenchmarkSimRXLSwitched2BER(b *testing.B) { benchSim(b, rxl.RXL, 2, 1e-6) }

// BenchmarkSimCXLSwitched2: baseline CXL across two levels (same workload
// as BenchmarkSimRXLSwitched2 for a cost comparison).
func BenchmarkSimCXLSwitched2(b *testing.B) { benchSim(b, rxl.CXL, 2, 0) }

// --- PR 2: error-event fast path ------------------------------------------

// benchFlitTransfer drives line-rate traffic through a two-level switched
// fabric at the paper's operating point (BER 1e-6) with the error-event
// fast path on or off. Differential tests guarantee both paths produce
// bit-identical results; this benchmark measures what the fast path buys —
// ns/flit and allocs/flit (near-zero on the fast path thanks to schedule
// skips, deferred seals, and flit/entry pooling).
func benchFlitTransfer(b *testing.B, fast bool) {
	b.ReportAllocs()
	fabric := rxl.MustNewFabric(rxl.Config{
		Protocol: rxl.RXL, Levels: 2, BER: 1e-6, BurstProb: 0.4,
		Seed: 11, NoFastPath: !fast,
	})
	delivered := 0
	fabric.B().Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 64)
	b.SetBytes(flit.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fabric.A().Submit(payload)
		if fabric.A().Queued() > 256 {
			fabric.Run()
		}
	}
	fabric.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkFlitTransfer compares the full simulator inner loop with the
// error-event fast path against the byte-level reference path.
func BenchmarkFlitTransfer(b *testing.B) {
	b.Run("fastpath", func(b *testing.B) { benchFlitTransfer(b, true) })
	b.Run("bytelevel", func(b *testing.B) { benchFlitTransfer(b, false) })
}

// --- PR 5: mesh-wide fast path + engine bulk advance ----------------------

// benchMeshTransfer drives line-rate traffic across the full diagonal of
// a 4x4 mesh (7 routers, 7 wire crossings) at the paper's operating point
// (BER 1e-6) with the mesh-wide error-event fast path and the express
// traversal path toggled independently. The mesh differential suite
// guarantees every mode produces bit-identical results; the fast path
// buys one schedule consultation per traversal instead of per-hop channel
// work (clean flits forwarded by reference), express collapses granted
// traversals into up-front wire claims plus a single delivery event.
func benchMeshTransfer(b *testing.B, noExpress, noFast bool) *rxl.NoC {
	b.ReportAllocs()
	noc, err := rxl.NewNoC(4, 4, rxl.Config{
		Protocol: rxl.RXL, BER: 1e-6, BurstProb: 0.4,
		Seed: 11, NoExpress: noExpress, NoFastPath: noFast,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := noc.Node(0, 0)
	dst := noc.Node(3, 3)
	tx := src.PeerTo(dst.ID)
	delivered := 0
	dst.PeerTo(src.ID).Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 64)
	b.SetBytes(flit.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Submit(payload)
		if tx.Queued() > 256 {
			noc.Run()
		}
	}
	noc.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
	return noc
}

// BenchmarkMeshTransferFastPath compares the multi-hop NoC inner loop
// with the mesh-wide fast path against the byte-level reference (every
// router decoding, checking, and re-encoding every flit), both on the
// per-hop event fabric (NoExpress — the PR 5 model this benchmark has
// always measured; the express win is gated separately by
// BenchmarkMeshExpressTraversal). CI gates the within-run
// bytelevel/fastpath ratio at ≥5×.
func BenchmarkMeshTransferFastPath(b *testing.B) {
	b.Run("fastpath", func(b *testing.B) { benchMeshTransfer(b, true, false) })
	b.Run("bytelevel", func(b *testing.B) { benchMeshTransfer(b, true, true) })
}

// --- PR 7: express traversal + clean-epoch skipping -----------------------

// BenchmarkMeshExpressTraversal measures what express traversal buys on
// the same diagonal workload: "express" claims every route wire at
// injection and schedules one delivery event per granted traversal
// (struck traversals walk their pre-claimed route with per-hop events),
// "fastpath" is the PR 5 per-hop event fabric. Both ride the error-event
// fast path; the express differential suite pins them bit-identical
// per mode against the byte-level reference. CI gates the within-run
// fastpath/express ratio — machine-invariant, it measures the event
// collapse itself. The express leg also reports the fraction of
// traversals that went express at this operating point.
func BenchmarkMeshExpressTraversal(b *testing.B) {
	b.Run("express", func(b *testing.B) {
		noc := benchMeshTransfer(b, false, false)
		ex := noc.Mesh.ExpressTraversals
		fb := noc.Mesh.ExpressFallbacks
		if ex == 0 {
			b.Fatal("no traversal went express")
		}
		b.ReportMetric(float64(ex)/float64(ex+fb), "express_share")
	})
	b.Run("fastpath", func(b *testing.B) { benchMeshTransfer(b, true, false) })
}

// BenchmarkMCEpochSkip measures clean-epoch skipping in the MC path-FER
// loop (7-hop diagonal, 300k flits per op). The PR 5 loop
// (MeasureFERPathGrantWalk, kept frozen) already consumes whole clean
// traversals in O(1) GrantSpans; the epoch-skip loop
// (MeasureFERPathSchedule) additionally jumps the clean crossings inside
// each struck traversal, making per-traversal cost proportional to error
// events rather than hops. The legs hold the flit count constant while
// the BER drops, so their ns/op ratios are per-flit cost ratios: CI gates
// pr5@1e-6 / epoch@1e-9 ≥ 5 — the BER-proportional effect the deep-tail
// estimators ride — and epoch@1e-6 vs pr5@1e-6 shows the same-BER
// intra-traversal win. Samples are asserted bit-identical between the
// two loops before timing.
func BenchmarkMCEpochSkip(b *testing.B) {
	const hops, flits = 7, 300_000
	if w, s := reliability.MeasureFERPathGrantWalk(1e-6, hops, 60_000, 11),
		reliability.MeasureFERPathSchedule(1e-6, hops, 60_000, 11); w != s {
		b.Fatalf("epoch-skip sample diverges from the PR 5 loop:\npr5   %+v\nepoch %+v", w, s)
	}
	legs := []struct {
		name string
		ber  float64
		fn   func(float64, int, int, uint64) reliability.PathFERSample
	}{
		{"pr5-ber1e6", 1e-6, reliability.MeasureFERPathGrantWalk},
		{"epoch-ber1e6", 1e-6, reliability.MeasureFERPathSchedule},
		{"epoch-ber1e9", 1e-9, reliability.MeasureFERPathSchedule},
	}
	for _, leg := range legs {
		b.Run(leg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				leg.fn(leg.ber, hops, flits, 1)
			}
			b.ReportMetric(float64(flits)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflits_per_s")
		})
	}
}

// BenchmarkEngineBulkAdvance measures the event-dispatch cost of the
// engine's bulk-advance pump on its dominant workload — a long monotone
// stream of payload events (pipe deliveries) — and on a mixed stream
// where a recurring out-of-order timer forces lane merging. The monotone
// leg is the per-event floor under every simulator benchmark above.
func BenchmarkEngineBulkAdvance(b *testing.B) {
	bench := func(b *testing.B, outOfOrderEvery int) {
		b.ReportAllocs()
		eng := rxl.NewEngine()
		n := 0
		noop := func() {}
		var pump func(interface{})
		pump = func(interface{}) {
			n++
			eng.ScheduleArg(2*rxl.Nanosecond, pump, nil)
			if outOfOrderEvery > 0 && n%outOfOrderEvery == 0 {
				// Deepen the sorted lane past the bounded insertion
				// window, then push beneath it — genuine heap traffic
				// (sim.TestPushBeyondInsertWindowGoesToHeap pins that
				// this pattern reaches the heap lane).
				for j := rxl.Time(0); j < 12; j++ {
					eng.Schedule((4+2*j)*rxl.Nanosecond, noop)
				}
				eng.At(eng.Now()+rxl.Nanosecond, noop)
			}
		}
		eng.ScheduleArg(0, pump, nil)
		b.ResetTimer()
		eng.AdvanceTo(2 * rxl.Nanosecond * rxl.Time(b.N))
		b.StopTimer()
		if n < b.N {
			b.Fatalf("dispatched %d of %d", n, b.N)
		}
	}
	b.Run("monotone", func(b *testing.B) { bench(b, 0) })
	b.Run("mixed", func(b *testing.B) { bench(b, 64) })
}

// BenchmarkMCPathInnerLoop measures the multi-hop Monte-Carlo FER loop
// (7-hop path, the 4x4 mesh diagonal) on the shared path schedule against
// the per-hop byte-level reference, asserts bit-identical samples, and
// reports the schedule's speedup plus its throughput relative to the
// single-link schedule loop (BenchmarkMCInnerLoopFastPath) — the
// tentpole claim is that a multi-hop traversal costs within a small
// factor of a single-link flit.
func BenchmarkMCPathInnerLoop(b *testing.B) {
	const ber, hops, flits = 1e-6, 7, 300_000
	var slowT, fastT, linkT time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		ref := reliability.MeasureFERPath(ber, hops, flits, 1)
		slowT += time.Since(start)

		start = time.Now()
		sched := reliability.MeasureFERPathSchedule(ber, hops, flits, 1)
		fastT += time.Since(start)

		start = time.Now()
		reliability.MeasureFERSchedule(ber, flits, 1)
		linkT += time.Since(start)

		if ref != sched {
			b.Fatalf("path schedule sample diverges from byte-level:\nbyte %+v\nsched %+v", ref, sched)
		}
	}
	b.ReportMetric(slowT.Seconds()/fastT.Seconds(), "speedup_vs_bytelevel")
	// Per hop crossing: a 7-hop traversal is 7 single-link units of
	// channel work, so this is the apples-to-apples cost of the shared
	// schedule versus the single-link loop (tentpole bar: ~2-5×).
	b.ReportMetric(fastT.Seconds()/(float64(hops)*linkT.Seconds()), "hop_cost_vs_single_link")
	b.ReportMetric(float64(flits)*float64(b.N)/fastT.Seconds()/1e6, "Mflits_per_s")
}

// seedFERLoop reproduces the pre-PR-2 Monte-Carlo FER inner loop exactly:
// per flit, zero a 256B image, draw a fresh geometric gap (truncated at
// the flit boundary — the statistical bug the residual-gap fix removed),
// and scan/corrupt byte-level. It is the "before" against which the
// error-event schedule's speedup is measured; it is kept here, not in
// internal/phy, because nothing but this benchmark should ever run it.
func seedFERLoop(ber float64, flits int, seed uint64) int {
	rng := phy.NewRNG(seed)
	buf := make([]byte, flit.Size)
	bits := flit.Bits
	bad := 0
	for i := 0; i < flits; i++ {
		for j := range buf {
			buf[j] = 0
		}
		flipped := 0
		pos := rng.Geometric(ber)
		for pos < bits {
			buf[pos/8] ^= 1 << (7 - pos%8)
			flipped++
			gap := rng.Geometric(ber)
			if gap >= bits {
				break
			}
			pos += 1 + gap
		}
		if flipped > 0 {
			bad++
		}
	}
	return bad
}

// BenchmarkMCInnerLoopFastPath measures the Monte-Carlo FER inner loop at
// the production operating point (BER 1e-6, where <1 in ~500 flits sees an
// error) three ways — the seed's per-flit loop, this PR's byte-level path
// (already schedule-backed, so clean flits skip the corruption scan), and
// the image-free error-event schedule — asserts byte-level and schedule
// samples are bit-identical, and reports throughput ratios as custom
// metrics. `speedup` is schedule vs the seed loop (acceptance bar: ≥ 10×).
func BenchmarkMCInnerLoopFastPath(b *testing.B) {
	const ber, flits = 1e-6, 300_000
	var seedT, slowT, fastT time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		seedFERLoop(ber, flits, 1)
		seedT += time.Since(start)

		start = time.Now()
		ref := reliability.MeasureFER(ber, flits, 1)
		slowT += time.Since(start)

		start = time.Now()
		sched := reliability.MeasureFERSchedule(ber, flits, 1)
		fastT += time.Since(start)

		if ref != sched {
			b.Fatalf("schedule sample diverges from byte-level:\nbyte %+v\nsched %+v", ref, sched)
		}
	}
	b.ReportMetric(seedT.Seconds()/fastT.Seconds(), "speedup")
	b.ReportMetric(slowT.Seconds()/fastT.Seconds(), "speedup_vs_bytelevel")
	b.ReportMetric(float64(flits)*float64(b.N)/fastT.Seconds()/1e6, "Mflits_per_s")
}

// --- E18: parallel sharded runner (DESIGN.md architecture section) --------

// BenchmarkParallelSweep runs a fixed Monte-Carlo workload (the E14 FEC
// burst stage) sequentially and then sharded across an 8-worker pool, and
// reports the wall-clock speedup as a custom metric. The merged aggregates
// are asserted bit-identical — the runner buys wall clock, never changes
// statistics. The speedup tracks min(8, GOMAXPROCS): ≈1× on one core,
// ≥3× on 8.
func BenchmarkParallelSweep(b *testing.B) {
	const burst, trials, shards, workers = 4, 20000, 64, 8
	ctx := context.Background()

	var seqT, parT time.Duration
	for i := 0; i < b.N; i++ {
		// Sequential reference: the same shard set on one goroutine, so
		// both sides do identical work and the ratio is pure scheduling.
		start := time.Now()
		seq, err := reliability.MeasureFECBurstSharded(ctx, rxl.Runner{Workers: 1, BaseSeed: 1}, burst, trials, shards)
		if err != nil {
			b.Fatal(err)
		}
		seqT += time.Since(start)

		start = time.Now()
		par, err := reliability.MeasureFECBurstSharded(ctx, rxl.Runner{Workers: workers, BaseSeed: 1}, burst, trials, shards)
		if err != nil {
			b.Fatal(err)
		}
		parT += time.Since(start)

		if seq != par {
			b.Fatalf("parallel aggregates diverge from sequential:\nseq %+v\npar %+v", seq, par)
		}
	}
	b.ReportMetric(seqT.Seconds()/parT.Seconds(), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}
